//! Event-time tumbling windows with watermark-based firing and late-event
//! dropping (§2.5–2.6).

use std::collections::BTreeMap;

use crate::event::Event;
use crate::metrics::PipelineMetrics;

/// Per-window accumulated state. Implemented by `Vec<f64>` (retain all
/// values — the exact oracle) and by the harness's sketch+oracle pairs.
pub trait WindowState {
    /// Observe one in-window value.
    fn observe(&mut self, value: f64);
}

impl WindowState for Vec<f64> {
    fn observe(&mut self, value: f64) {
        self.push(value);
    }
}

/// A fired window and its accumulated state.
#[derive(Debug, Clone)]
pub struct WindowResult<S> {
    /// Window start (inclusive, µs of event time).
    pub start_us: u64,
    /// Window end (exclusive, µs of event time).
    pub end_us: u64,
    /// Number of events that made it into the window.
    pub count: u64,
    /// The accumulated state.
    pub items: S,
}

/// Everything produced by a windowed run.
#[derive(Debug, Clone)]
pub struct FiredWindows<S> {
    /// Fired windows in event-time order.
    pub results: Vec<WindowResult<S>>,
    /// Events dropped because their window had already fired (§2.6).
    pub dropped_late: u64,
    /// Total events observed (including dropped).
    pub total: u64,
}

impl<S> FiredWindows<S> {
    /// Fraction of events dropped as late.
    pub fn loss_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.dropped_late as f64 / self.total as f64
        }
    }
}

/// Event-time tumbling-window operator.
///
/// Events must arrive in **ingestion order**. The watermark is the maximum
/// event time seen (Flink's ascending-timestamps watermark, zero allowed
/// lateness): when it passes a window's end the window fires, and any
/// event for an already-fired window is dropped as late.
pub struct TumblingWindows<S, F: FnMut() -> S> {
    window_us: u64,
    /// Watermark lag (Flink's bounded out-of-orderness): the watermark
    /// trails the max event time by this much. Zero (the paper's
    /// ascending-timestamp setup) drops every out-of-order straggler whose
    /// window already fired; a positive lag delays firing, trading result
    /// latency for fewer late drops (explored in `ext_watermark_lag`).
    watermark_lag_us: u64,
    factory: F,
    /// Open windows keyed by window index (`event_time / window_us`).
    open: BTreeMap<u64, WindowResult<S>>,
    /// Max event time seen (the watermark).
    watermark_us: u64,
    /// Window indices below this have fired (or can never open).
    fired_below: u64,
    results: Vec<WindowResult<S>>,
    dropped_late: u64,
    total: u64,
    /// Optional observability hooks; `None` keeps the hot path branch-only.
    metrics: Option<PipelineMetrics>,
}

impl<S: WindowState, F: FnMut() -> S> TumblingWindows<S, F> {
    /// Create an operator with `window_us`-long windows; `factory` builds
    /// each window's fresh state.
    pub fn new(window_us: u64, factory: F) -> Self {
        Self::with_watermark_lag(window_us, 0, factory)
    }

    /// Create an operator whose watermark trails the max event time by
    /// `watermark_lag_us`.
    pub fn with_watermark_lag(window_us: u64, watermark_lag_us: u64, factory: F) -> Self {
        assert!(window_us > 0);
        Self {
            window_us,
            watermark_lag_us,
            factory,
            open: BTreeMap::new(),
            watermark_us: 0,
            fired_below: 0,
            results: Vec::new(),
            dropped_late: 0,
            total: 0,
            metrics: None,
        }
    }

    /// Attach pipeline metrics: per-event watermark lag, late-drop and
    /// window-fire counters, per-window emit latency.
    pub fn with_metrics(mut self, metrics: PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The current watermark (µs).
    pub fn watermark_us(&self) -> u64 {
        self.watermark_us
    }

    /// Feed one event (in ingestion order).
    pub fn observe(&mut self, event: Event) {
        self.total += 1;
        let idx = event.event_time_us / self.window_us;

        // Advance the watermark and fire any window it passed.
        let candidate = event.event_time_us.saturating_sub(self.watermark_lag_us);
        if candidate > self.watermark_us {
            self.watermark_us = candidate;
            let fire_below = self.watermark_us / self.window_us;
            self.fire_below(fire_below, Some(event.ingest_time_us));
        }

        if let Some(m) = &self.metrics {
            m.events.inc();
            m.watermark_us.set(self.watermark_us);
            m.watermark_lag_us
                .record(event.ingest_time_us.saturating_sub(self.watermark_us));
        }

        if idx < self.fired_below {
            // Window already fired: this is a late event; drop it (§2.6).
            self.dropped_late += 1;
            if let Some(m) = &self.metrics {
                m.late_dropped.inc();
            }
            return;
        }

        let window_us = self.window_us;
        let factory = &mut self.factory;
        let w = self.open.entry(idx).or_insert_with(|| WindowResult {
            start_us: idx * window_us,
            end_us: (idx + 1) * window_us,
            count: 0,
            items: factory(),
        });
        w.items.observe(event.value);
        w.count += 1;
    }

    /// Fire open windows below `fire_below`. `trigger_ingest_us` is the
    /// ingestion time of the watermark-advancing event, used for the
    /// emit-latency metric (`None` for the end-of-stream flush).
    fn fire_below(&mut self, fire_below: u64, trigger_ingest_us: Option<u64>) {
        while let Some((&idx, _)) = self.open.first_key_value() {
            if idx >= fire_below {
                break;
            }
            let (_, w) = self.open.pop_first().expect("checked non-empty");
            if let Some(m) = &self.metrics {
                m.windows_fired.inc();
                if let Some(ingest) = trigger_ingest_us {
                    // How long past its event-time end the window stayed
                    // open before the watermark fired it.
                    m.emit_latency_us.record(ingest.saturating_sub(w.end_us));
                }
            }
            self.results.push(w);
        }
        self.fired_below = self.fired_below.max(fire_below);
    }

    /// End of stream: fire every remaining open window and return all
    /// results.
    pub fn close(mut self) -> FiredWindows<S> {
        while let Some((_, w)) = self.open.pop_first() {
            if let Some(m) = &self.metrics {
                m.windows_fired.inc();
            }
            self.results.push(w);
        }
        FiredWindows {
            results: self.results,
            dropped_late: self.dropped_late,
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(value: f64, event_ms: u64, delay_ms: u64) -> Event {
        Event::new(value, event_ms * 1_000, delay_ms * 1_000)
    }

    fn run(events: Vec<Event>, window_ms: u64) -> FiredWindows<Vec<f64>> {
        let mut sorted = events;
        sorted.sort_by_key(|e| e.ingest_time_us);
        let mut op = TumblingWindows::new(window_ms * 1_000, Vec::new);
        for e in sorted {
            op.observe(e);
        }
        op.close()
    }

    #[test]
    fn events_grouped_by_generated_time() {
        // §2.5: grouping is by generated time, not ingestion time.
        let fired = run(
            vec![
                ev(1.0, 0, 0),
                ev(2.0, 500, 0),
                ev(3.0, 999, 2000), // generated in window 0, arrives late-ish but no later window seen yet
                ev(4.0, 1500, 0),
            ],
            1000,
        );
        // Watermark at 1500 fires window 0 — but event 3 arrived (ingest
        // 2999ms) *after* event 4 (ingest 1500ms), so window 0 was already
        // fired when it showed up: dropped.
        assert_eq!(fired.dropped_late, 1);
        assert_eq!(fired.results.len(), 2);
        assert_eq!(fired.results[0].items, vec![1.0, 2.0]);
        assert_eq!(fired.results[1].items, vec![4.0]);
    }

    #[test]
    fn no_delay_no_loss() {
        let events: Vec<Event> = (0..5000).map(|i| ev(i as f64, i, 0)).collect();
        let fired = run(events, 1000);
        assert_eq!(fired.dropped_late, 0);
        assert_eq!(fired.results.len(), 5);
        for w in &fired.results {
            assert_eq!(w.count, 1000);
        }
    }

    #[test]
    fn in_window_reordering_is_not_late() {
        // Delay that keeps an event inside its window's lifetime is fine.
        let fired = run(
            vec![ev(1.0, 0, 0), ev(2.0, 100, 300), ev(3.0, 200, 0), ev(4.0, 1200, 0)],
            1000,
        );
        assert_eq!(fired.dropped_late, 0);
        assert_eq!(fired.results[0].count, 3);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let fired = run(vec![ev(1.0, 999, 0), ev(2.0, 1000, 0), ev(3.0, 1999, 0)], 1000);
        assert_eq!(fired.results.len(), 2);
        assert_eq!(fired.results[0].items, vec![1.0]);
        assert_eq!(fired.results[1].items, vec![2.0, 3.0]);
        assert_eq!(fired.results[0].start_us, 0);
        assert_eq!(fired.results[0].end_us, 1_000_000);
    }

    #[test]
    fn loss_fraction() {
        let fired = run(
            vec![ev(1.0, 0, 0), ev(2.0, 1500, 0), ev(3.0, 900, 5000)],
            1000,
        );
        assert_eq!(fired.dropped_late, 1);
        assert!((fired.loss_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn watermark_lag_saves_stragglers() {
        // Same stream, two operators: zero lag drops the straggler, a
        // 2-second lag admits it.
        let events = vec![ev(1.0, 0, 0), ev(2.0, 1500, 0), ev(3.0, 900, 1000)];
        let strict = run(events.clone(), 1000);
        assert_eq!(strict.dropped_late, 1);

        let mut sorted = events;
        sorted.sort_by_key(|e| e.ingest_time_us);
        let mut lagged = TumblingWindows::with_watermark_lag(1_000_000, 2_000_000, Vec::new);
        for e in sorted {
            lagged.observe(e);
        }
        let fired = lagged.close();
        assert_eq!(fired.dropped_late, 0);
        let w0 = fired.results.iter().find(|w| w.start_us == 0).unwrap();
        assert!(w0.items.contains(&3.0), "straggler admitted under lag");
    }

    #[test]
    fn empty_stream() {
        let fired = run(vec![], 1000);
        assert!(fired.results.is_empty());
        assert_eq!(fired.total, 0);
        assert_eq!(fired.loss_fraction(), 0.0);
    }

    #[test]
    fn metrics_mirror_engine_counts() {
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = PipelineMetrics::register(&registry);
        let mut op = TumblingWindows::new(1_000_000, Vec::new)
            .with_metrics(metrics);
        let events = vec![
            ev(1.0, 0, 0),
            ev(2.0, 1500, 0),
            ev(3.0, 900, 5000), // late: window 0 fired at watermark 1500ms
            ev(4.0, 2500, 0),
        ];
        let mut sorted = events;
        sorted.sort_by_key(|e| e.ingest_time_us);
        for e in sorted {
            op.observe(e);
        }
        let fired = op.close();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("pipeline.events"), Some(fired.total));
        assert_eq!(
            snap.counter("pipeline.late_dropped"),
            Some(fired.dropped_late)
        );
        assert_eq!(
            snap.counter("pipeline.windows_fired"),
            Some(fired.results.len() as u64)
        );
        assert_eq!(snap.gauge("pipeline.watermark_us"), Some(2_500_000));
        // Window 0 (end 1s) fired by the 1.5s ingest and window 1 (end 2s)
        // by the 2.5s ingest — 0.5s emit latency each; the window flushed
        // at close records none.
        let emit = snap.histogram("pipeline.emit_latency_us").unwrap();
        assert_eq!(emit.count, 2);
        assert_eq!(emit.max, 500_000);
        // Every observed event records a watermark-lag sample.
        let lag = snap.histogram("pipeline.watermark_lag_us").unwrap();
        assert_eq!(lag.count, fired.total);
        // The straggler (event time 0.9s, ingested 5.9s, watermark 2.5s)
        // dominates the lag distribution: 5.9s − 2.5s = 3.4s.
        assert_eq!(lag.max, 3_400_000);
    }

    #[test]
    fn emit_latency_includes_configured_watermark_lag() {
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let mut op = TumblingWindows::with_watermark_lag(1_000_000, 500_000, Vec::new)
            .with_metrics(PipelineMetrics::register(&registry));
        // Prompt arrivals: window 0 can only fire once event time passes
        // end + lag = 1.5s.
        for ms in [0u64, 900, 1400, 1600] {
            op.observe(ev(1.0, ms, 0));
        }
        op.close();
        let emit = registry
            .snapshot()
            .histogram("pipeline.emit_latency_us")
            .cloned()
            .unwrap();
        assert_eq!(emit.count, 1);
        // Fired by the 1.6s event: 0.6s after the window's 1s end.
        assert_eq!(emit.max, 600_000);
    }
}

//! Network-delay models (§2.5, §4.6).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

/// How long an event takes from source to stream processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkDelay {
    /// Events arrive instantly (the §4.5 accuracy experiments).
    None,
    /// Every event is delayed by the same amount (µs) — useful in tests.
    Fixed(u64),
    /// Exponentially distributed delay with the given mean in
    /// milliseconds — the §4.6 late-data model ("an offset from an
    /// exponential distribution with 150 ms as the mean network delay").
    ExponentialMs(f64),
}

/// A seeded sampler for a [`NetworkDelay`] model.
#[derive(Debug, Clone)]
pub struct DelaySampler {
    kind: DelayKind,
    rng: StdRng,
}

#[derive(Debug, Clone)]
enum DelayKind {
    None,
    Fixed(u64),
    Exponential(Exp<f64>),
}

impl DelaySampler {
    /// Build a sampler for `model`, seeded deterministically.
    pub fn new(model: NetworkDelay, seed: u64) -> Self {
        let kind = match model {
            NetworkDelay::None => DelayKind::None,
            NetworkDelay::Fixed(us) => DelayKind::Fixed(us),
            NetworkDelay::ExponentialMs(mean_ms) => {
                assert!(mean_ms > 0.0, "mean delay must be positive");
                // Exp rate λ = 1/mean, sampling in µs.
                DelayKind::Exponential(Exp::new(1.0 / (mean_ms * 1_000.0)).expect("valid rate"))
            }
        };
        Self {
            kind,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Sample one delay in microseconds.
    pub fn sample_us(&mut self) -> u64 {
        match &self.kind {
            DelayKind::None => 0,
            DelayKind::Fixed(us) => *us,
            DelayKind::Exponential(exp) => exp.sample(&mut self.rng) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        let mut s = DelaySampler::new(NetworkDelay::None, 1);
        for _ in 0..100 {
            assert_eq!(s.sample_us(), 0);
        }
    }

    #[test]
    fn fixed_is_constant() {
        let mut s = DelaySampler::new(NetworkDelay::Fixed(123), 1);
        for _ in 0..100 {
            assert_eq!(s.sample_us(), 123);
        }
    }

    #[test]
    fn exponential_mean_close_to_model() {
        let mut s = DelaySampler::new(NetworkDelay::ExponentialMs(150.0), 7);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| s.sample_us()).sum();
        let mean_ms = sum as f64 / n as f64 / 1_000.0;
        assert!((mean_ms - 150.0).abs() < 3.0, "mean {mean_ms} ms");
    }

    #[test]
    fn exponential_has_long_tail() {
        // §4.6: "the tail is long" — a noticeable share of events exceeds
        // 3x the mean.
        let mut s = DelaySampler::new(NetworkDelay::ExponentialMs(150.0), 9);
        let n = 100_000;
        let over = (0..n).filter(|_| s.sample_us() > 450_000).count();
        let frac = over as f64 / n as f64;
        // P(X > 3·mean) = e^{-3} ≈ 0.0498.
        assert!((0.04..0.06).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = DelaySampler::new(NetworkDelay::ExponentialMs(150.0), 42);
        let mut b = DelaySampler::new(NetworkDelay::ExponentialMs(150.0), 42);
        for _ in 0..1000 {
            assert_eq!(a.sample_us(), b.sample_us());
        }
    }
}

//! Stream events with the two timestamps of §2.5: *generated* (event) time
//! and *ingestion* time.

/// One stream event. Timestamps are microseconds from stream start; the
/// difference `ingest_time_us − event_time_us` is the network delay
/// (§2.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Payload value.
    pub value: f64,
    /// Time the event was generated at the source (µs).
    pub event_time_us: u64,
    /// Time the event reached the stream processor (µs).
    pub ingest_time_us: u64,
}

impl Event {
    /// Construct an event; ingestion can never precede generation.
    pub fn new(value: f64, event_time_us: u64, delay_us: u64) -> Self {
        Self {
            value,
            event_time_us,
            ingest_time_us: event_time_us + delay_us,
        }
    }

    /// The event's network delay in microseconds.
    pub fn delay_us(&self) -> u64 {
        self.ingest_time_us - self.event_time_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_accounting() {
        let e = Event::new(1.5, 1_000, 250);
        assert_eq!(e.event_time_us, 1_000);
        assert_eq!(e.ingest_time_us, 1_250);
        assert_eq!(e.delay_us(), 250);
    }

    #[test]
    fn zero_delay() {
        let e = Event::new(0.0, 42, 0);
        assert_eq!(e.ingest_time_us, e.event_time_us);
    }
}

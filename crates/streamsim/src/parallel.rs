//! Partitioned windowed aggregation: the distributed pattern the paper's
//! mergeability discussion motivates (§2.4) applied inside the windowed
//! pipeline — each window's data is split across `p` partition sketches
//! (as a parallel SPE operator would), and the per-window result is the
//! merge of the partitions.
//!
//! Because every evaluated sketch is mergeable "without any change to the
//! error guarantees", the partitioned result must match a single-sketch
//! run's error regime; `tests/` asserts exactly that.

use std::fmt;

use qsketch_core::sketch::{MergeError, MergeableSketch};

use crate::metrics::PartitionMetrics;
use crate::window::WindowState;

/// Error attaching [`PartitionMetrics`] that cover fewer partitions than
/// the window has (every partition needs a counter to record into).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMetricsMismatch {
    /// Partitions the metrics were registered for.
    pub metrics_partitions: usize,
    /// Partitions the window actually has.
    pub window_partitions: usize,
}

impl fmt::Display for PartitionMetricsMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metrics cover {} partitions, window has {}",
            self.metrics_partitions, self.window_partitions
        )
    }
}

impl std::error::Error for PartitionMetricsMismatch {}

/// Per-window state holding one sketch per partition; values are routed
/// round-robin (an SPE's rebalance distribution).
#[derive(Debug)]
pub struct PartitionedWindow<S> {
    partitions: Vec<S>,
    next: usize,
    /// Optional per-partition event counters (shared across windows, so
    /// totals describe the whole pipeline's routing balance).
    metrics: Option<PartitionMetrics>,
}

impl<S: MergeableSketch> PartitionedWindow<S> {
    /// Create with `p` partition sketches from a factory.
    pub fn new(p: usize, mut factory: impl FnMut() -> S) -> Self {
        assert!(p > 0, "need at least one partition");
        Self {
            partitions: (0..p).map(|_| factory()).collect(),
            next: 0,
            metrics: None,
        }
    }

    /// Attach per-partition counters; `metrics` must cover at least this
    /// window's partitions. Successive windows can share one
    /// [`PartitionMetrics`], accumulating pipeline-wide per-partition
    /// totals.
    ///
    /// ```
    /// use qsketch_ddsketch::DdSketch;
    /// use qsketch_streamsim::metrics::PartitionMetrics;
    /// use qsketch_streamsim::parallel::PartitionedWindow;
    /// use qsketch_core::metrics::MetricsRegistry;
    ///
    /// let registry = MetricsRegistry::new();
    /// let metrics = PartitionMetrics::register(&registry, "pipeline", 2);
    /// // Two counters cannot cover three partitions:
    /// assert!(PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
    ///     .try_with_metrics(metrics.clone())
    ///     .is_err());
    /// let window = PartitionedWindow::new(2, || DdSketch::unbounded(0.01))
    ///     .try_with_metrics(metrics)
    ///     .unwrap();
    /// assert_eq!(window.num_partitions(), 2);
    /// ```
    pub fn try_with_metrics(
        mut self,
        metrics: PartitionMetrics,
    ) -> Result<Self, PartitionMetricsMismatch> {
        if metrics.len() < self.partitions.len() {
            return Err(PartitionMetricsMismatch {
                metrics_partitions: metrics.len(),
                window_partitions: self.partitions.len(),
            });
        }
        self.metrics = Some(metrics);
        Ok(self)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total events routed.
    pub fn count(&self) -> u64 {
        self.partitions.iter().map(|s| s.count()).sum()
    }

    /// Merge all partitions into the final per-window sketch (what the
    /// window emits downstream).
    pub fn merge_partitions(mut self) -> Result<S, MergeError> {
        let mut acc = self.partitions.remove(0);
        for s in &self.partitions {
            acc.merge(s)?;
        }
        Ok(acc)
    }

    /// Borrow the partition sketches (e.g. to encode and ship them).
    pub fn partitions(&self) -> &[S] {
        &self.partitions
    }
}

impl<S: MergeableSketch> WindowState for PartitionedWindow<S> {
    fn observe(&mut self, value: f64) {
        let p = self.next;
        self.next = (self.next + 1) % self.partitions.len();
        self.partitions[p].insert(value);
        if let Some(m) = &self.metrics {
            m.record(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::window::TumblingWindows;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;

    #[test]
    fn round_robin_balances() {
        let mut w = PartitionedWindow::new(4, || DdSketch::unbounded(0.01));
        for i in 0..1000 {
            w.observe(i as f64 + 1.0);
        }
        for s in w.partitions() {
            assert_eq!(s.count(), 250);
        }
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn merged_partitions_keep_the_guarantee() {
        let mut w = PartitionedWindow::new(8, || DdSketch::unbounded(0.01));
        for i in 1..=80_000 {
            w.observe(i as f64);
        }
        let merged = w.merge_partitions().unwrap();
        assert_eq!(merged.count(), 80_000);
        for q in [0.25, 0.5, 0.99] {
            let truth = (q * 80_000.0_f64).ceil();
            let est = merged.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn works_as_window_state_in_the_operator() {
        let mut op = TumblingWindows::new(1_000_000, || {
            PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
        });
        for i in 0..3000u64 {
            op.observe(Event::new((i % 100) as f64 + 1.0, i * 1_000, 0));
        }
        let fired = op.close();
        assert_eq!(fired.results.len(), 3);
        for w in fired.results {
            let merged = w.items.merge_partitions().unwrap();
            assert_eq!(merged.count(), 1000);
            let median = merged.query(0.5).unwrap();
            assert!((49.0..53.0).contains(&median), "median {median}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        PartitionedWindow::new(0, || DdSketch::unbounded(0.01));
    }

    #[test]
    fn partition_counters_accumulate_across_windows() {
        use crate::metrics::PartitionMetrics;
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = PartitionMetrics::register(&registry, "pipeline", 3);
        let mut op = TumblingWindows::new(1_000_000, || {
            PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
                .try_with_metrics(metrics.clone())
                .unwrap()
        });
        for i in 0..3000u64 {
            op.observe(Event::new((i % 100) as f64 + 1.0, i * 1_000, 0));
        }
        let fired = op.close();
        assert_eq!(fired.results.len(), 3);
        // Counters are shared by every window; each window restarts its
        // round-robin at partition 0, so partition 0 leads by at most one
        // event per window.
        assert_eq!(metrics.totals(), vec![1002, 999, 999]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pipeline.partition.0.events"), Some(1002));
    }

    #[test]
    fn undersized_partition_metrics_rejected() {
        use crate::metrics::PartitionMetrics;
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = PartitionMetrics::register(&registry, "pipeline", 2);
        let err = PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
            .try_with_metrics(metrics)
            .unwrap_err();
        assert_eq!(err.metrics_partitions, 2);
        assert_eq!(err.window_partitions, 3);
        assert!(err.to_string().contains("metrics cover 2 partitions"));
    }
}

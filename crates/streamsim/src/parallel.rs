//! Partitioned windowed aggregation: the distributed pattern the paper's
//! mergeability discussion motivates (§2.4) applied inside the windowed
//! pipeline — each window's data is split across `p` partition sketches
//! (as a parallel SPE operator would), and the per-window result is the
//! merge of the partitions.
//!
//! Because every evaluated sketch is mergeable "without any change to the
//! error guarantees", the partitioned result must match a single-sketch
//! run's error regime; `tests/` asserts exactly that.

use qsketch_core::sketch::{MergeError, MergeableSketch};

use crate::metrics::PartitionMetrics;
use crate::window::WindowState;

/// Per-window state holding one sketch per partition; values are routed
/// round-robin (an SPE's rebalance distribution).
pub struct PartitionedWindow<S> {
    partitions: Vec<S>,
    next: usize,
    /// Optional per-partition event counters (shared across windows, so
    /// totals describe the whole pipeline's routing balance).
    metrics: Option<PartitionMetrics>,
}

impl<S: MergeableSketch> PartitionedWindow<S> {
    /// Create with `p` partition sketches from a factory.
    pub fn new(p: usize, mut factory: impl FnMut() -> S) -> Self {
        assert!(p > 0, "need at least one partition");
        Self {
            partitions: (0..p).map(|_| factory()).collect(),
            next: 0,
            metrics: None,
        }
    }

    /// Attach per-partition counters; `metrics` must cover at least this
    /// window's partitions. Successive windows can share one
    /// [`PartitionMetrics`], accumulating pipeline-wide per-partition
    /// totals.
    pub fn with_metrics(mut self, metrics: PartitionMetrics) -> Self {
        assert!(
            metrics.len() >= self.partitions.len(),
            "metrics cover {} partitions, window has {}",
            metrics.len(),
            self.partitions.len()
        );
        self.metrics = Some(metrics);
        self
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total events routed.
    pub fn count(&self) -> u64 {
        self.partitions.iter().map(|s| s.count()).sum()
    }

    /// Merge all partitions into the final per-window sketch (what the
    /// window emits downstream).
    pub fn merge_partitions(mut self) -> Result<S, MergeError> {
        let mut acc = self.partitions.remove(0);
        for s in &self.partitions {
            acc.merge(s)?;
        }
        Ok(acc)
    }

    /// Borrow the partition sketches (e.g. to encode and ship them).
    pub fn partitions(&self) -> &[S] {
        &self.partitions
    }
}

impl<S: MergeableSketch> WindowState for PartitionedWindow<S> {
    fn observe(&mut self, value: f64) {
        let p = self.next;
        self.next = (self.next + 1) % self.partitions.len();
        self.partitions[p].insert(value);
        if let Some(m) = &self.metrics {
            m.record(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::window::TumblingWindows;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;

    #[test]
    fn round_robin_balances() {
        let mut w = PartitionedWindow::new(4, || DdSketch::unbounded(0.01));
        for i in 0..1000 {
            w.observe(i as f64 + 1.0);
        }
        for s in w.partitions() {
            assert_eq!(s.count(), 250);
        }
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn merged_partitions_keep_the_guarantee() {
        let mut w = PartitionedWindow::new(8, || DdSketch::unbounded(0.01));
        for i in 1..=80_000 {
            w.observe(i as f64);
        }
        let merged = w.merge_partitions().unwrap();
        assert_eq!(merged.count(), 80_000);
        for q in [0.25, 0.5, 0.99] {
            let truth = (q * 80_000.0_f64).ceil();
            let est = merged.query(q).unwrap();
            assert!(((est - truth) / truth).abs() <= 0.01 + 1e-9, "q={q}");
        }
    }

    #[test]
    fn works_as_window_state_in_the_operator() {
        let mut op = TumblingWindows::new(1_000_000, || {
            PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
        });
        for i in 0..3000u64 {
            op.observe(Event::new((i % 100) as f64 + 1.0, i * 1_000, 0));
        }
        let fired = op.close();
        assert_eq!(fired.results.len(), 3);
        for w in fired.results {
            let merged = w.items.merge_partitions().unwrap();
            assert_eq!(merged.count(), 1000);
            let median = merged.query(0.5).unwrap();
            assert!((49.0..53.0).contains(&median), "median {median}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        PartitionedWindow::new(0, || DdSketch::unbounded(0.01));
    }

    #[test]
    fn partition_counters_accumulate_across_windows() {
        use crate::metrics::PartitionMetrics;
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = PartitionMetrics::register(&registry, "pipeline", 3);
        let mut op = TumblingWindows::new(1_000_000, || {
            PartitionedWindow::new(3, || DdSketch::unbounded(0.01))
                .with_metrics(metrics.clone())
        });
        for i in 0..3000u64 {
            op.observe(Event::new((i % 100) as f64 + 1.0, i * 1_000, 0));
        }
        let fired = op.close();
        assert_eq!(fired.results.len(), 3);
        // Counters are shared by every window; each window restarts its
        // round-robin at partition 0, so partition 0 leads by at most one
        // event per window.
        assert_eq!(metrics.totals(), vec![1002, 999, 999]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pipeline.partition.0.events"), Some(1002));
    }

    #[test]
    #[should_panic(expected = "metrics cover")]
    fn undersized_partition_metrics_rejected() {
        use crate::metrics::PartitionMetrics;
        use qsketch_core::metrics::MetricsRegistry;

        let registry = MetricsRegistry::new();
        let metrics = PartitionMetrics::register(&registry, "pipeline", 2);
        let _ = PartitionedWindow::new(3, || DdSketch::unbounded(0.01)).with_metrics(metrics);
    }
}

//! Sliding event-time windows (§2.5: "A sliding window of the same length
//! and a period of 1 s would create a group from time t to t + 10 s,
//! another group from t + 1 s to t + 11 s, and so on").
//!
//! An event with timestamp `t` belongs to every window
//! `[k·slide, k·slide + size)` with
//! `k ∈ (⌊t/slide⌋ − size/slide, ⌊t/slide⌋]`.
//!
//! # Example
//!
//! A 2 s window sliding by 1 s: every event lands in two windows, so the
//! per-window counts overlap:
//!
//! ```
//! use qsketch_streamsim::event::Event;
//! use qsketch_streamsim::sliding::SlidingWindows;
//!
//! let mut op = SlidingWindows::new(2_000_000, 1_000_000, Vec::new);
//! for i in 0..4_000u64 {
//!     op.observe(Event::new(1.0, i * 1_000, 0)); // 1 event/ms for 4 s
//! }
//! let fired = op.close();
//! // Windows starting at 0s, 1s, 2s, 3s (starts never go negative).
//! assert_eq!(fired.results.len(), 4);
//! let full_windows = fired
//!     .results
//!     .iter()
//!     .filter(|w| w.count == 2_000)
//!     .count();
//! assert_eq!(full_windows, 3);
//! ```

use std::collections::BTreeMap;

use crate::event::Event;
use crate::window::{FiredWindows, WindowResult, WindowState};

/// Event-time sliding-window operator with late-event dropping under the
/// same max-event-time watermark as [`crate::window::TumblingWindows`].
pub struct SlidingWindows<S, F: FnMut() -> S> {
    size_us: u64,
    slide_us: u64,
    factory: F,
    /// Open windows keyed by window start (µs).
    open: BTreeMap<u64, WindowResult<S>>,
    watermark_us: u64,
    /// Window starts below this have fired.
    fired_before_start: u64,
    results: Vec<WindowResult<S>>,
    dropped_late: u64,
    total: u64,
}

impl<S: WindowState, F: FnMut() -> S> SlidingWindows<S, F> {
    /// Create an operator; `size_us` must be a positive multiple of
    /// `slide_us` (the standard SPE constraint).
    pub fn new(size_us: u64, slide_us: u64, factory: F) -> Self {
        assert!(slide_us > 0 && size_us > 0, "degenerate window");
        assert!(
            size_us.is_multiple_of(slide_us),
            "window size must be a multiple of the slide"
        );
        Self {
            size_us,
            slide_us,
            factory,
            open: BTreeMap::new(),
            watermark_us: 0,
            fired_before_start: 0,
            results: Vec::new(),
            dropped_late: 0,
            total: 0,
        }
    }

    /// Window starts covering event time `t`.
    fn window_starts(&self, t: u64) -> impl Iterator<Item = u64> {
        let last_start = (t / self.slide_us) * self.slide_us;
        let first_start = (t + self.slide_us).saturating_sub(self.size_us) / self.slide_us
            * self.slide_us;
        let slide = self.slide_us;
        (0..)
            .map(move |k| first_start + k * slide)
            .take_while(move |&s| s <= last_start)
    }

    /// Feed one event in ingestion order.
    pub fn observe(&mut self, event: Event) {
        self.total += 1;
        if event.event_time_us > self.watermark_us {
            self.watermark_us = event.event_time_us;
            // Fire every open window whose end passed the watermark.
            let watermark = self.watermark_us;
            while let Some((&start, _)) = self.open.first_key_value() {
                if start + self.size_us > watermark {
                    break;
                }
                let (_, w) = self.open.pop_first().expect("non-empty");
                self.fired_before_start = self.fired_before_start.max(start + self.slide_us);
                self.results.push(w);
            }
            // Also advance the late boundary for windows that never
            // opened. A window [s, s+size) is closed iff s + size <=
            // watermark; no window is closed while watermark < size.
            if let Some(diff) = watermark.checked_sub(self.size_us) {
                let newly_closed_start = (diff / self.slide_us + 1) * self.slide_us;
                self.fired_before_start = self.fired_before_start.max(newly_closed_start);
            }
        }

        let mut late = true;
        let starts: Vec<u64> = self.window_starts(event.event_time_us).collect();
        for start in starts {
            if start < self.fired_before_start {
                continue; // this assignment already fired
            }
            late = false;
            let size = self.size_us;
            let factory = &mut self.factory;
            let w = self.open.entry(start).or_insert_with(|| WindowResult {
                start_us: start,
                end_us: start + size,
                count: 0,
                items: factory(),
            });
            w.items.observe(event.value);
            w.count += 1;
        }
        if late {
            self.dropped_late += 1;
        }
    }

    /// End of stream: fire remaining windows.
    pub fn close(mut self) -> FiredWindows<S> {
        while let Some((_, w)) = self.open.pop_first() {
            self.results.push(w);
        }
        FiredWindows {
            results: self.results,
            dropped_late: self.dropped_late,
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(value: f64, event_ms: u64) -> Event {
        Event::new(value, event_ms * 1_000, 0)
    }

    #[test]
    fn event_lands_in_all_covering_windows() {
        // size 10 ms, slide 2 ms: each event covered by 5 windows.
        let mut op = SlidingWindows::new(10_000, 2_000, Vec::new);
        op.observe(ev(1.0, 9)); // windows starting at 0,2,4,6,8 ms
        op.observe(ev(2.0, 50)); // fires everything before 40ms
        let fired = op.close();
        let covering = fired
            .results
            .iter()
            .filter(|w| w.items.contains(&1.0))
            .count();
        assert_eq!(covering, 5);
    }

    #[test]
    fn windows_overlap_counts() {
        // Steady one event per ms; every full 10 ms window holds 10.
        let mut op = SlidingWindows::new(10_000, 5_000, Vec::new);
        for t in 0..100 {
            op.observe(ev(t as f64, t));
        }
        let fired = op.close();
        // Interior windows (fully covered) hold exactly 10 events.
        let interior: Vec<&WindowResult<Vec<f64>>> = fired
            .results
            .iter()
            .filter(|w| w.start_us >= 10_000 && w.end_us <= 90_000)
            .collect();
        assert!(!interior.is_empty());
        for w in interior {
            assert_eq!(w.count, 10, "window at {}", w.start_us);
        }
    }

    #[test]
    fn tumbling_is_the_slide_equals_size_special_case() {
        let mut sliding = SlidingWindows::new(10_000, 10_000, Vec::new);
        for t in 0..50 {
            sliding.observe(ev(t as f64, t));
        }
        let fired = sliding.close();
        assert_eq!(fired.results.len(), 5);
        for w in &fired.results {
            assert_eq!(w.count, 10);
        }
    }

    #[test]
    fn late_event_dropped_only_when_all_assignments_fired() {
        let mut op = SlidingWindows::new(10_000, 5_000, Vec::new);
        op.observe(ev(1.0, 1));
        op.observe(ev(2.0, 14)); // watermark 14ms: window [0,10) fired
        // Event at t=8 still belongs to [5,15): not late.
        op.observe(ev(3.0, 8));
        let fired = op.close();
        assert_eq!(fired.dropped_late, 0);
        let w5 = fired
            .results
            .iter()
            .find(|w| w.start_us == 5_000)
            .expect("window at 5ms");
        assert!(w5.items.contains(&3.0));
        // The fired [0,10) window must NOT contain the straggler.
        let w0 = fired
            .results
            .iter()
            .find(|w| w.start_us == 0)
            .expect("window at 0");
        assert!(!w0.items.contains(&3.0));
    }

    #[test]
    fn fully_late_event_dropped() {
        let mut op = SlidingWindows::new(10_000, 5_000, Vec::new);
        op.observe(ev(1.0, 1));
        op.observe(ev(2.0, 40)); // everything below [35,45) fired/closed
        op.observe(ev(3.0, 2)); // all its windows fired
        let fired = op.close();
        assert_eq!(fired.dropped_late, 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_non_divisible_slide() {
        SlidingWindows::new(10_000, 3_000, Vec::<f64>::new);
    }
}

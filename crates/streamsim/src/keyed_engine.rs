//! Multi-tenant keyed sharded ingestion: the serving-side sibling of
//! [`crate::engine::ShardedEngine`], reworked onto the lock-free
//! substrate in [`crate::concurrent`].
//!
//! The plain sharded engine summarises **one** stream across N shards
//! (round-robin, merge-on-query). A quantile *service* faces the
//! transposed problem: **millions of independent streams** — one per
//! `(tenant, metric-key)` pair — each of which must stay queryable on
//! its own. [`KeyedEngine`] restructures the same worker/ring/merge
//! machinery around that shape:
//!
//! ```text
//!                 hash(tenant,key) % N        worker-owned registry
//!  producers ──▶ router ──[KeyedBatch]──▶ ring i ──▶ { (tenant,key) → sketch }
//!  (any thread)     │     lock-free MPSC      │               │ epoch publish
//!                   └─ per-tenant GCRA quota  ▼               ▼
//!                      (one atomic; reject,  EpochCell⟨{key → snapshot bytes}⟩
//!                      don't block)                │
//!                                     wait-free [`query`](KeyedEngine::query) /
//!                                     [`query_prefix`](KeyedEngine::query_prefix)
//! ```
//!
//! * **Hash routing** ([`crate::routing`]): every value of a key lands on
//!   `shard_for(hash_pair(tenant, key), N)`, so a point query touches
//!   exactly one shard's published map and cross-key queries merge
//!   snapshots (mergeability, §2.4 — the property arXiv:2004.08604 leans
//!   on for UDDSketch's distributed story).
//! * **Registry per shard, owned by its worker.** The
//!   `HashMap<(tenant, key), S>` lives on the worker thread's stack —
//!   no lock is ever taken around an insert. Sketches are minted lazily
//!   from a shared [`SketchFactory`]: every key starts from the same
//!   initial state, which is what keeps recovery bit-identical.
//! * **Queries read published epochs, not live state.** Every
//!   `epoch_interval` inserted values (and at every
//!   [`drain`](KeyedEngine::drain)) the worker re-encodes the keys that
//!   changed and publishes the map of wire payloads through an
//!   [`EpochCell`]. [`query`](KeyedEngine::query) returns a
//!   [`SnapshotHandle`] over those bytes: it never blocks ingestion and
//!   ingestion never blocks it.
//! * **Quotas are a single atomic per tenant.** Admission control is
//!   GCRA (the virtual-scheduling form of the token bucket): one `u64`
//!   *theoretical arrival time* advanced by CAS. The steady-state ingest
//!   path touches no mutex — explicit-quota tenants resolve through an
//!   immutable map, default-quota tenants through a copy-on-write map
//!   warmed up once per tenant. An over-budget batch is **rejected
//!   immediately** with a retry hint instead of filling the shared
//!   rings; the noisy neighbor never converts its overload into other
//!   tenants' latency.
//! * **Ingestion is multi-producer**: [`ingest`](KeyedEngine::ingest)
//!   takes `&self`, so one engine behind an `Arc` serves every server
//!   connection thread concurrently; producers contend only on the CAS
//!   ticket of the home shard's ring.
//! * **Checkpoints** write each shard's whole registry as one atomic
//!   [`RegistryCheckpoint`] file, encoded **on the worker thread** (the
//!   only thread that can see a consistent registry) on a cadence or on
//!   a [`checkpoint_now`](KeyedEngine::checkpoint_now) request. There is
//!   no replay contract (a network stream cannot be replayed by the
//!   caller), so recovery restores state *as of the last checkpoint*.
//!
//! # Determinism
//!
//! Keys are partitioned — two shards never touch the same sketch — so
//! the per-shard determinism contract of the concurrent substrate (see
//! ARCHITECTURE.md) degenerates to a per-key one: each key's sketch is a
//! deterministic function of the sequence of batches ingested for that
//! key. Interleaving across keys and shards never affects any answer.
//!
//! # Example
//!
//! ```
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_core::QuantileSketch;
//! use qsketch_streamsim::EngineBuilder;
//!
//! let engine = EngineBuilder::keyed(2)
//!     .spawn(|| DdSketch::unbounded(0.01))
//!     .unwrap();
//! for i in 1..=1_000 {
//!     engine.ingest("acme", "checkout.latency", &[i as f64]).unwrap();
//!     engine.ingest("acme", "search.latency", &[(i % 10) as f64 + 1.0]).unwrap();
//! }
//! engine.drain();
//! let p50 = engine.query("acme", "checkout.latency").unwrap().quantile(0.5).unwrap();
//! assert!((p50 - 500.0).abs() / 500.0 <= 0.01);
//! // Cross-key query: merge every key of the tenant, lazily.
//! let merged = engine.query_prefix("acme", "").merged().unwrap().unwrap();
//! assert_eq!(merged.count(), 2_000);
//! engine.finish();
//! ```

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qsketch_core::codec::SketchSerialize;
use qsketch_core::metrics::MetricsRegistry;
use qsketch_core::pool::{BufferPool, Pooled, Recycle};
use qsketch_core::sketch::{MergeableSketch, SketchError, SketchFactory};

use crate::checkpoint::{
    read_registry, write_atomic, CheckpointConfig, RegistryCheckpoint, RegistryEntry,
};
use crate::concurrent::{
    DeadOnPanic, EpochCell, EpochRequest, HandoffRing, PopState, ShardSnapshot, SnapshotHandle,
    DEFAULT_EPOCH_INTERVAL,
};
use crate::metrics::{KeyedEngineMetrics, RollupMetrics};
use crate::rollup::{RangeAnswer, RangeQuantiles, RollupConfig, RollupStore, TierSpec};
use crate::routing::{hash_pair, shard_for};

/// Default handoff-ring capacity per shard, in ingest batches.
pub const DEFAULT_KEYED_QUEUE_CAPACITY: usize = 256;

/// A per-tenant ingest budget: a token bucket refilled at
/// `events_per_sec`, holding at most `burst` tokens. One inserted value
/// costs one token; a batch that cannot be paid for is rejected whole.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained refill rate, values per second.
    pub events_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota of `events_per_sec` sustained, with a burst of one
    /// second's worth of events (min 1).
    pub fn per_sec(events_per_sec: f64) -> Self {
        Self {
            events_per_sec,
            burst: events_per_sec.max(1.0),
        }
    }

    /// Override the burst capacity (min 1 token).
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst.max(1.0);
        self
    }
}

/// A [`TenantQuota`] enforced by GCRA (generic cell rate algorithm), the
/// virtual-scheduling formulation of the token bucket: the whole bucket
/// state is one `u64` — the *theoretical arrival time* (TAT) in
/// nanoseconds since engine start — advanced by CAS. Equivalent to the
/// classic refill loop (a batch of `n` values advances the TAT by
/// `n / rate`; it is admitted iff the advanced TAT stays within
/// `burst / rate` of now) but needs no mutex and no stored float state,
/// so admission on the ingest hot path is a handful of atomic ops.
#[derive(Debug)]
struct GcraBucket {
    /// Nanoseconds of budget one value costs (`1e9 / events_per_sec`).
    token_ns: f64,
    /// How far the TAT may run ahead of now (`burst · token_ns`).
    burst_ns: f64,
    /// Largest batch that can ever be admitted at once.
    burst_values: f64,
    /// Theoretical arrival time, ns since the engine's start instant.
    tat: AtomicU64,
}

impl GcraBucket {
    fn new(quota: TenantQuota) -> Self {
        let token_ns = 1e9 / quota.events_per_sec.max(f64::MIN_POSITIVE);
        let burst = quota.burst.max(1.0);
        Self {
            token_ns,
            burst_ns: burst * token_ns,
            burst_values: burst,
            tat: AtomicU64::new(0),
        }
    }

    /// Try to admit `n` values at `now_ns`; on rejection return the
    /// suggested retry delay in milliseconds (0 = the batch exceeds the
    /// burst capacity outright and can never pass — split it instead).
    ///
    /// AcqRel on the CAS orders concurrent admissions of one tenant
    /// against each other, so the budget can never be double-spent: each
    /// successful CAS consumes exactly its cost from the single TAT.
    fn try_take(&self, n: u64, now_ns: u64) -> Result<(), u64> {
        if n as f64 > self.burst_values {
            return Err(0);
        }
        let cost = ((n as f64) * self.token_ns).ceil() as u64;
        let limit = now_ns.saturating_add(self.burst_ns as u64);
        let mut tat = self.tat.load(Ordering::Acquire);
        loop {
            let next = tat.max(now_ns).saturating_add(cost);
            if next > limit {
                return Err((((next - limit) as f64) / 1e6).ceil().max(1.0) as u64);
            }
            match self
                .tat
                .compare_exchange_weak(tat, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(()),
                Err(current) => tat = current,
            }
        }
    }
}

/// The engine's quota state: explicit per-tenant buckets resolved at
/// spawn time (immutable, lock-free lookups forever), plus a
/// copy-on-write map of lazily created buckets for tenants covered by
/// the default quota. A default-quota tenant's **first** batch takes the
/// warm-up mutex once to install its bucket; every later batch resolves
/// through the published map — atomics only after warm-up.
struct QuotaTable {
    start: Instant,
    explicit: HashMap<String, Arc<GcraBucket>>,
    default_quota: Option<TenantQuota>,
    dynamic: EpochCell<HashMap<String, Arc<GcraBucket>>>,
    warmup: Mutex<()>,
}

impl QuotaTable {
    fn new(explicit: &[(String, TenantQuota)], default_quota: Option<TenantQuota>) -> Self {
        Self {
            start: Instant::now(),
            explicit: explicit
                .iter()
                .map(|(t, q)| (t.clone(), Arc::new(GcraBucket::new(*q))))
                .collect(),
            default_quota,
            dynamic: EpochCell::new(Arc::new(HashMap::new())),
            warmup: Mutex::new(()),
        }
    }

    /// Nanoseconds since the engine started (the GCRA clock).
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The bucket charging `tenant`, `None` when the tenant is
    /// unlimited. Lock-free except for the one-time warm-up of a
    /// default-quota tenant.
    fn bucket_for(&self, tenant: &str) -> Option<Arc<GcraBucket>> {
        if let Some(bucket) = self.explicit.get(tenant) {
            return Some(Arc::clone(bucket));
        }
        let default = self.default_quota?;
        if let Some(bucket) = self.dynamic.load().get(tenant) {
            return Some(Arc::clone(bucket));
        }
        let _warmup = self.warmup.lock().expect("quota warm-up poisoned");
        // Re-check under the lock: another producer may have warmed this
        // tenant up while we waited.
        let current = self.dynamic.load();
        if let Some(bucket) = current.get(tenant) {
            return Some(Arc::clone(bucket));
        }
        let bucket = Arc::new(GcraBucket::new(default));
        let mut next = (*current).clone();
        next.insert(tenant.to_string(), Arc::clone(&bucket));
        self.dynamic.publish(Arc::new(next));
        Some(bucket)
    }
}

/// Per-key hierarchical rollup riding on the keyed workers: every
/// `window_values` inserted values of a `(tenant, key)` pair close one
/// fine-tier window of that key's [`RollupStore`], which then cascades,
/// ages out, and answers range queries in *window units* (fine slot `i`
/// covers values `[i·window_values, (i+1)·window_values)` of the key's
/// stream, in ingest order).
///
/// With a `spill_root`, each key's store writes through to its own
/// subdirectory (`<hash>-<tenant>-<key>`, non-portable characters
/// replaced) and is lazily recovered from disk the next time the key is
/// touched — including by a process that never ingested it.
#[derive(Debug, Clone)]
pub struct RollupOptions {
    /// Values per fine-tier window. A window closes (and is ingested
    /// into the store) only when full; a trailing partial window is
    /// queryable via [`KeyedEngine::query`] but not via range
    /// queries, and is not durable.
    pub window_values: u64,
    /// The tier ladder, finest first, widths in window units (see
    /// [`RollupStore::new`] for the invariants).
    pub tiers: Vec<TierSpec>,
    /// Root directory for per-key spill subdirectories (`None` =
    /// memory-only rollups, not recoverable).
    pub spill_root: Option<PathBuf>,
    /// Newest slots per tier kept decoded when spilling (see
    /// [`RollupConfig::with_hot_slots`]).
    pub hot_slots: usize,
}

impl RollupOptions {
    /// Rollups of `window_values`-value windows over `tiers`, memory
    /// only, default hot-slot count.
    pub fn new(window_values: u64, tiers: Vec<TierSpec>) -> Self {
        Self {
            window_values: window_values.max(1),
            tiers,
            spill_root: None,
            hot_slots: RollupConfig::new(Vec::new()).hot_slots,
        }
    }

    /// Spill every key's store under `root` (created on first write).
    #[must_use]
    pub fn with_spill_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.spill_root = Some(root.into());
        self
    }

    /// Set how many newest slots per tier stay decoded in memory.
    #[must_use]
    pub fn with_hot_slots(mut self, hot: usize) -> Self {
        self.hot_slots = hot;
        self
    }

    /// The store config for one key (per-key spill dir resolved).
    fn store_config(&self, tenant: &str, key: &str) -> RollupConfig {
        let mut config = RollupConfig::new(self.tiers.clone()).with_hot_slots(self.hot_slots);
        if let Some(root) = &self.spill_root {
            config = config.with_spill_dir(root.join(rollup_dir_name(tenant, key)));
        }
        config
    }
}

/// Filesystem-safe per-key spill directory name: the routing hash (for
/// uniqueness) plus sanitized, truncated tenant/key (for operators).
fn rollup_dir_name(tenant: &str, key: &str) -> String {
    fn sanitize(s: &str) -> String {
        s.chars()
            .take(40)
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }
    format!(
        "{:016x}-{}-{}",
        hash_pair(tenant, key),
        sanitize(tenant),
        sanitize(key)
    )
}

/// Configuration for a [`KeyedEngine`]. Prefer building engines through
/// [`EngineBuilder::keyed`](crate::builder::EngineBuilder::keyed), which
/// fills this in for you.
///
/// ```
/// use qsketch_streamsim::keyed_engine::KeyedEngineConfig;
///
/// let mut config = KeyedEngineConfig::new(4);
/// config.queue_capacity = 128;
/// assert_eq!(config.shards, 4);
/// assert!(config.quotas.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct KeyedEngineConfig {
    /// Number of shard worker threads (and shard registries).
    pub shards: usize,
    /// Bounded capacity of each shard's handoff ring, in ingest batches
    /// (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Values a shard worker inserts between two snapshot publications.
    pub epoch_interval: u64,
    /// Per-tenant quotas by tenant name.
    pub quotas: Vec<(String, TenantQuota)>,
    /// Quota applied to tenants without an explicit entry (`None` =
    /// unlimited).
    pub default_quota: Option<TenantQuota>,
    /// Periodic registry checkpointing (`None` = only explicit
    /// [`KeyedEngine::checkpoint_now`] calls write files).
    pub checkpoint: Option<CheckpointConfig>,
    /// Per-key hierarchical rollups (`None` = range queries are a typed
    /// error).
    pub rollup: Option<RollupOptions>,
}

impl KeyedEngineConfig {
    /// Config with `shards` workers, default ring capacity and epoch
    /// cadence, no quotas, no checkpointing.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            queue_capacity: DEFAULT_KEYED_QUEUE_CAPACITY,
            epoch_interval: DEFAULT_EPOCH_INTERVAL,
            quotas: Vec::new(),
            default_quota: None,
            checkpoint: None,
            rollup: None,
        }
    }

}

/// Error from constructing, feeding, querying, or recovering a
/// [`KeyedEngine`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KeyedEngineError {
    /// The configuration asked for zero shards.
    NoShards,
    /// A tenant exceeded its ingest quota; the batch was rejected whole.
    QuotaExceeded {
        /// The over-budget tenant.
        tenant: String,
        /// Suggested wait before retrying, in milliseconds (0 when the
        /// batch is larger than the tenant's burst capacity and could
        /// never be admitted — split it instead).
        retry_after_ms: u64,
    },
    /// A query named a `(tenant, key)` pair with no recorded values.
    UnknownKey {
        /// Tenant queried.
        tenant: String,
        /// Key queried.
        key: String,
    },
    /// A sketch operation (query/merge/decode) failed.
    Sketch(SketchError),
    /// A checkpoint file could not be read or written.
    Io(String),
    /// A checkpoint was taken under a different shard count, or holds a
    /// key that does not hash to its shard.
    TopologyMismatch(String),
    /// The engine was spawned without a checkpoint config but a
    /// checkpoint operation was requested.
    CheckpointingDisabled,
    /// The engine was spawned without rollup options but a range query
    /// was requested.
    RollupDisabled,
    /// A rollup-store operation failed (stringified [`crate::rollup::RollupError`]).
    Rollup(String),
}

impl std::fmt::Display for KeyedEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyedEngineError::NoShards => write!(f, "engine needs at least one shard"),
            KeyedEngineError::QuotaExceeded {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant} exceeded its ingest quota (retry after {retry_after_ms} ms)"
            ),
            KeyedEngineError::UnknownKey { tenant, key } => {
                write!(f, "no sketch for tenant {tenant}, key {key}")
            }
            KeyedEngineError::Sketch(e) => write!(f, "sketch operation failed: {e}"),
            KeyedEngineError::Io(e) => write!(f, "checkpoint io failed: {e}"),
            KeyedEngineError::TopologyMismatch(e) => {
                write!(f, "checkpoint topology mismatch: {e}")
            }
            KeyedEngineError::CheckpointingDisabled => {
                write!(f, "engine was spawned without a checkpoint config")
            }
            KeyedEngineError::RollupDisabled => {
                write!(f, "engine was spawned without rollup options")
            }
            KeyedEngineError::Rollup(e) => write!(f, "rollup operation failed: {e}"),
        }
    }
}

impl std::error::Error for KeyedEngineError {}

impl From<SketchError> for KeyedEngineError {
    fn from(e: SketchError) -> Self {
        KeyedEngineError::Sketch(e)
    }
}

/// One routed ingest batch: a run of values for a single
/// `(tenant, key)` pair. Batches are pooled ([`BufferPool`]) and ride
/// the ring as [`Pooled<KeyedBatch>`]: the worker's drop returns the
/// buffer — strings and value vec with their capacity intact — to the
/// router, so the steady-state ingest path allocates nothing.
#[derive(Default)]
struct KeyedBatch {
    tenant: String,
    key: String,
    values: Vec<f64>,
}

impl Recycle for KeyedBatch {
    fn reset(&mut self) {
        self.tenant.clear();
        self.key.clear();
        self.values.clear();
    }

    fn heap_bytes(&self) -> usize {
        self.tenant.capacity()
            + self.key.capacity()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }
}

/// Borrowed-lookup key for the worker's `(String, String)`-keyed maps:
/// the classic `Borrow<dyn Trait>` idiom lets `registry.get_mut`,
/// `dirty.contains`, and the rollup-state probe take `(&str, &str)`
/// straight off the batch in the ring — the owned pair is cloned only
/// the first time a key is seen, never per batch.
trait KeyPair {
    fn tenant(&self) -> &str;
    fn key(&self) -> &str;
}

impl KeyPair for (String, String) {
    fn tenant(&self) -> &str {
        &self.0
    }
    fn key(&self) -> &str {
        &self.1
    }
}

impl KeyPair for (&str, &str) {
    fn tenant(&self) -> &str {
        self.0
    }
    fn key(&self) -> &str {
        self.1
    }
}

impl<'a> std::borrow::Borrow<dyn KeyPair + 'a> for (String, String) {
    fn borrow(&self) -> &(dyn KeyPair + 'a) {
        self
    }
}

// Must produce the same hashes/equalities as `(String, String)` itself:
// the derived tuple hash feeds each `str` to the hasher in order, which
// is exactly what these do.
impl std::hash::Hash for dyn KeyPair + '_ {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tenant().hash(state);
        self.key().hash(state);
    }
}

impl PartialEq for dyn KeyPair + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.tenant() == other.tenant() && self.key() == other.key()
    }
}

impl Eq for dyn KeyPair + '_ {}

/// One shard's keyed registry: `(tenant, key) → sketch`. Owned by the
/// shard worker; nothing else ever sees it.
type KeyedRegistry<S> = HashMap<(String, String), S>;

/// A shard's restore state: its registry plus the values-done counter
/// as of the checkpoint it was decoded from.
type ShardInit<S> = (KeyedRegistry<S>, u64);

/// What a shard publishes for queries: every key's latest snapshot
/// part, re-encoded only when the key changed since the last epoch.
type KeyMap = HashMap<(String, String), Arc<ShardSnapshot>>;

/// One key's live rollup: the partially filled fine window (`None`
/// until the worker first feeds it — a query-side lazy recovery has no
/// factory to mint one) and the tiered store.
struct RollupState<S> {
    window: Option<S>,
    filled: u64,
    store: RollupStore<S>,
}

/// Rollup wiring shared by every shard, resolved at spawn time.
struct RollupRuntime {
    options: RollupOptions,
    metrics: Option<RollupMetrics>,
    /// Last rollup error (best-effort, like checkpoint errors: a failed
    /// spill or cascade never stops ingestion).
    error: Mutex<Option<String>>,
}

/// Open a key's store: recover from its spill directory when one
/// exists, otherwise start empty.
fn open_rollup_store<S>(
    runtime: &RollupRuntime,
    tenant: &str,
    key: &str,
) -> Result<RollupStore<S>, crate::rollup::RollupError>
where
    S: MergeableSketch + SketchSerialize + Clone,
{
    let config = runtime.options.store_config(tenant, key);
    let mut store = match &config.spill_dir {
        Some(dir) if dir.is_dir() => RollupStore::recover(config),
        _ => RollupStore::new(config),
    }?;
    if let Some(m) = &runtime.metrics {
        store.attach_metrics(m.clone());
    }
    Ok(store)
}

/// Feed one admitted batch into a key's rollup, closing (and ingesting)
/// every fine window it fills.
fn feed_rollup<S, F>(
    state: &mut RollupState<S>,
    values: &[f64],
    window_values: u64,
    factory: &F,
) -> Result<(), crate::rollup::RollupError>
where
    S: MergeableSketch + SketchSerialize + Clone,
    F: SketchFactory<Sketch = S>,
{
    let mut idx = 0;
    while idx < values.len() {
        let window = state.window.get_or_insert_with(|| factory.make());
        let room = (window_values - state.filled) as usize;
        let take = room.min(values.len() - idx);
        window.insert_batch(&values[idx..idx + take]);
        state.filled += take as u64;
        idx += take;
        if state.filled == window_values {
            let start = state.store.frontier();
            let full = state.window.take().expect("window just filled");
            state.store.ingest_window(start, full)?;
            state.filled = 0;
        }
    }
    Ok(())
}

/// How the keyed engine checkpoints, resolved at spawn time (the keyed
/// analogue of the plain engine's checkpoint plan — the encode hook is a
/// plain `fn` pointer resolved once rather than re-monomorphised per
/// call site).
struct KeyedCheckpointPlan<S> {
    config: CheckpointConfig,
    num_shards: usize,
    encode: fn(&S) -> Vec<u8>,
}

impl<S> KeyedCheckpointPlan<S> {
    /// Encode shard `i`'s registry (called on the worker thread, the
    /// only place a consistent registry is visible).
    fn encode_registry(&self, i: usize, registry: &KeyedRegistry<S>, values_done: u64) -> Vec<u8> {
        let entries = registry
            .iter()
            .map(|((tenant, key), sketch)| RegistryEntry {
                tenant: tenant.clone(),
                key: key.clone(),
                payload: (self.encode)(sketch),
            })
            .collect();
        RegistryCheckpoint {
            shard: i,
            num_shards: self.num_shards,
            values_done,
            entries,
        }
        .encode()
    }
}

/// Re-encode every dirty key and publish the shard's new key map. The
/// parts of untouched keys are shared (`Arc`) with the previous epoch,
/// so publication cost scales with the write set, not the key count.
/// No-op (the published map is already current) when nothing is dirty.
fn publish_keymap<S: SketchSerialize>(
    shard: usize,
    cell: &EpochCell<KeyMap>,
    registry: &KeyedRegistry<S>,
    published: &mut KeyMap,
    dirty: &mut HashSet<(String, String)>,
    values_done: u64,
    metrics: &Option<KeyedEngineMetrics>,
) {
    if dirty.is_empty() {
        return;
    }
    let epoch = cell.epoch() + 1;
    for id in dirty.drain() {
        match registry.get(&id) {
            Some(sketch) => {
                published.insert(
                    id,
                    Arc::new(ShardSnapshot {
                        shard,
                        epoch,
                        values_done,
                        bytes: sketch.encode(),
                    }),
                );
            }
            None => {
                published.remove(&id);
            }
        }
    }
    cell.publish(Arc::new(published.clone()));
    if let Some(m) = metrics {
        m.engine.epochs_published.inc();
    }
}

/// Encode and atomically write shard `i`'s registry checkpoint (worker
/// thread only), recording checkpoint metrics on success.
fn write_registry_ckpt<S>(
    i: usize,
    plan: &KeyedCheckpointPlan<S>,
    registry: &KeyedRegistry<S>,
    values_done: u64,
    metrics: &Option<KeyedEngineMetrics>,
) -> Result<(), String> {
    let start = Instant::now();
    let bytes = plan.encode_registry(i, registry, values_done);
    write_atomic(&plan.config.registry_path(i), &bytes).map_err(|e| e.to_string())?;
    if let Some(m) = metrics {
        m.engine.checkpoints.inc();
        m.engine
            .checkpoint_ns
            .record(start.elapsed().as_nanos() as u64);
        m.engine.checkpoint_bytes.record(bytes.len() as u64);
    }
    Ok(())
}

/// A shard's per-`(tenant, key)` rollup stores, shared between the
/// worker (window closes) and the query side (range queries). Rollup
/// state is deliberately outside the wait-free surface — see
/// ARCHITECTURE.md.
type SharedRollups<S> = Arc<Mutex<HashMap<(String, String), RollupState<S>>>>;

/// One shard: its handoff ring, its published key map, the request
/// mailboxes its worker services, the rollup stores, the worker handle,
/// and the last checkpoint-write error.
struct KeyedShard<S> {
    ring: Arc<HandoffRing<Pooled<KeyedBatch>>>,
    cell: Arc<EpochCell<KeyMap>>,
    epoch_req: Arc<EpochRequest>,
    ckpt_req: Arc<EpochRequest>,
    ckpt_result: Arc<Mutex<Option<Result<(), String>>>>,
    rollup: SharedRollups<S>,
    worker: Option<JoinHandle<()>>,
    ckpt_error: Arc<Mutex<Option<String>>>,
}

/// Point-in-time operational stats of a [`KeyedEngine`] (what the
/// server's `Stats` op reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedEngineStats {
    /// Values accepted by the router (admitted past quota).
    pub events_ingested: u64,
    /// Distinct `(tenant, key)` sketches across all shards (as of each
    /// shard's last published epoch).
    pub keys: u64,
    /// Shard worker count.
    pub shards: u64,
    /// Batches rejected by quota, total.
    pub quota_rejected_batches: u64,
    /// Per-tenant rejected batch counts, sorted by tenant.
    pub quota_rejected_by_tenant: Vec<(String, u64)>,
}

/// A multi-tenant keyed ingestion engine on the lock-free substrate:
/// hash-routed per-key sketches behind handoff rings, atomic GCRA
/// quotas, wait-free snapshot queries. See the [module docs](self) for
/// the architecture.
pub struct KeyedEngine<S> {
    shards: Vec<KeyedShard<S>>,
    /// Recycled [`KeyedBatch`] buffers: the router fills one per ingest
    /// call, the shard worker's drop returns it. Capped so idle memory
    /// stays bounded; misses mint a fresh (empty) batch.
    batch_pool: BufferPool<KeyedBatch>,
    quotas: QuotaTable,
    rejected: Mutex<HashMap<String, u64>>,
    rejected_total: AtomicU64,
    events: AtomicU64,
    metrics: Option<KeyedEngineMetrics>,
    plan: Option<Arc<KeyedCheckpointPlan<S>>>,
    rollup: Option<Arc<RollupRuntime>>,
}

impl<S: MergeableSketch + SketchSerialize + Clone + Send + 'static> KeyedEngine<S> {
    /// Construct the engine for
    /// [`EngineBuilder::keyed`](crate::builder::EngineBuilder::keyed):
    /// resolve metrics and the checkpoint plan, optionally preload every
    /// shard from its registry checkpoint, then spawn the workers.
    pub(crate) fn build<F>(
        config: KeyedEngineConfig,
        factory: F,
        metrics: Option<(&MetricsRegistry, &str)>,
        recover: bool,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        if config.shards == 0 {
            return Err(KeyedEngineError::NoShards);
        }
        // Enough idle buffers for every ring slot plus a round of
        // in-flight producers; beyond that, returned buffers are dropped
        // rather than hoarded.
        let max_idle = (config.shards * config.queue_capacity.max(1) + 64).min(8192);
        let (batch_pool, metrics, rollup_metrics) = match metrics {
            Some((registry, prefix)) => (
                BufferPool::with_metrics(max_idle, registry, &format!("{prefix}.batch")),
                Some(KeyedEngineMetrics::register(registry, prefix, config.shards)),
                config.rollup.as_ref().map(|r| {
                    RollupMetrics::register(registry, &format!("{prefix}.rollup"), r.tiers.len())
                }),
            ),
            None => (BufferPool::new(max_idle), None, None),
        };
        let plan = match &config.checkpoint {
            Some(_) => Some(Self::make_plan(&config)?),
            None if recover => return Err(KeyedEngineError::CheckpointingDisabled),
            None => None,
        };
        let preload = if recover {
            let plan = plan.as_ref().expect("recover implies a checkpoint plan");
            let mut preload = Vec::with_capacity(config.shards);
            for i in 0..config.shards {
                match read_registry(&plan.config, i)
                    .map_err(|e| KeyedEngineError::Io(e.to_string()))?
                {
                    Some(decoded) => {
                        let envelope = decoded
                            .map_err(|e| KeyedEngineError::Sketch(SketchError::Decode(e)))?;
                        if envelope.num_shards != config.shards {
                            return Err(KeyedEngineError::TopologyMismatch(format!(
                                "registry checkpoint for shard {i} was taken with {} shards, \
                                 recovering with {}",
                                envelope.num_shards, config.shards,
                            )));
                        }
                        let mut map = HashMap::with_capacity(envelope.entries.len());
                        for entry in &envelope.entries {
                            let home =
                                shard_for(hash_pair(&entry.tenant, &entry.key), config.shards);
                            if home != i {
                                return Err(KeyedEngineError::TopologyMismatch(format!(
                                    "key ({}, {}) in shard {i}'s checkpoint hashes to shard {home}",
                                    entry.tenant, entry.key,
                                )));
                            }
                            let sketch = S::decode(&entry.payload)
                                .map_err(|e| KeyedEngineError::Sketch(SketchError::Decode(e)))?;
                            map.insert((entry.tenant.clone(), entry.key.clone()), sketch);
                        }
                        preload.push((map, envelope.values_done));
                    }
                    None => preload.push((HashMap::new(), 0)),
                }
            }
            preload
        } else {
            Vec::new()
        };
        Self::spawn_impl(config, factory, preload, batch_pool, metrics, plan, rollup_metrics)
    }

    fn spawn_impl<F>(
        config: KeyedEngineConfig,
        factory: F,
        preload: Vec<ShardInit<S>>,
        batch_pool: BufferPool<KeyedBatch>,
        metrics: Option<KeyedEngineMetrics>,
        plan: Option<Arc<KeyedCheckpointPlan<S>>>,
        rollup_metrics: Option<RollupMetrics>,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        if config.shards == 0 {
            return Err(KeyedEngineError::NoShards);
        }
        let capacity = config.queue_capacity.max(1);
        let epoch_interval = config.epoch_interval.max(1);
        let rollup = config.rollup.clone().map(|options| {
            Arc::new(RollupRuntime {
                options,
                metrics: rollup_metrics,
                error: Mutex::new(None),
            })
        });
        let mut inits: Vec<ShardInit<S>> = preload;
        while inits.len() < config.shards {
            inits.push((HashMap::new(), 0));
        }
        let interval = config
            .checkpoint
            .as_ref()
            .map(|c| c.interval_values)
            .unwrap_or(u64::MAX);
        let shards = inits
            .into_iter()
            .enumerate()
            .map(|(i, (registry, done))| {
                let ring = Arc::new(HandoffRing::<Pooled<KeyedBatch>>::new(capacity));
                // The initial publish happens here, on the spawner
                // thread, so a recovered engine answers queries for its
                // preloaded keys before the worker runs at all.
                let initial: KeyMap = registry
                    .iter()
                    .map(|(id, sketch)| {
                        (
                            id.clone(),
                            Arc::new(ShardSnapshot {
                                shard: i,
                                epoch: 0,
                                values_done: done,
                                bytes: sketch.encode(),
                            }),
                        )
                    })
                    .collect();
                let cell = Arc::new(EpochCell::new(Arc::new(initial.clone())));
                let epoch_req = Arc::new(EpochRequest::new());
                let ckpt_req = Arc::new(EpochRequest::new());
                let ckpt_result: Arc<Mutex<Option<Result<(), String>>>> =
                    Arc::new(Mutex::new(None));
                let rollup_states: SharedRollups<S> = Arc::new(Mutex::new(HashMap::new()));
                let ckpt_error = Arc::new(Mutex::new(None));
                let w_ring = Arc::clone(&ring);
                let w_cell = Arc::clone(&cell);
                let w_epoch_req = Arc::clone(&epoch_req);
                let w_ckpt_req = Arc::clone(&ckpt_req);
                let w_ckpt_result = Arc::clone(&ckpt_result);
                let w_rollup_states = Arc::clone(&rollup_states);
                let w_ckpt_error = Arc::clone(&ckpt_error);
                let w_metrics = metrics.clone();
                let w_plan = plan.clone();
                let w_rollup = rollup.clone();
                let w_factory = factory.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("qsketch-keyed-{i}"))
                    .spawn(move || {
                        let _dead_on_panic = DeadOnPanic(Arc::clone(&w_ring));
                        let mut registry = registry;
                        let mut published = initial;
                        let mut dirty: HashSet<(String, String)> = HashSet::new();
                        let mut values_done = done;
                        let mut last_ckpt = done;
                        let mut last_pub = done;
                        loop {
                            // Service the request mailboxes first so a
                            // drain/checkpoint barrier is never starved
                            // by a full ring.
                            if let Some(ticket) = w_epoch_req.pending() {
                                publish_keymap(
                                    i,
                                    &w_cell,
                                    &registry,
                                    &mut published,
                                    &mut dirty,
                                    values_done,
                                    &w_metrics,
                                );
                                last_pub = values_done;
                                w_epoch_req.ack(ticket);
                            }
                            if let Some(ticket) = w_ckpt_req.pending() {
                                if let Some(plan) = &w_plan {
                                    let result = write_registry_ckpt(
                                        i,
                                        plan,
                                        &registry,
                                        values_done,
                                        &w_metrics,
                                    );
                                    if let Err(e) = &result {
                                        *w_ckpt_error.lock().expect("ckpt error poisoned") =
                                            Some(e.clone());
                                    }
                                    *w_ckpt_result.lock().expect("ckpt result poisoned") =
                                        Some(result);
                                    last_ckpt = values_done;
                                }
                                w_ckpt_req.ack(ticket);
                            }
                            match w_ring.pop_wait() {
                                PopState::Item(batch, depth) => {
                                    let n = batch.values.len() as u64;
                                    // Probe every map with the borrowed
                                    // pair (see [`KeyPair`]): owned keys
                                    // are cloned only on first sight of
                                    // a `(tenant, key)`, or once per
                                    // key per epoch for the dirty set —
                                    // never per batch.
                                    let probe: (&str, &str) = (&batch.tenant, &batch.key);
                                    match registry.get_mut(&probe as &dyn KeyPair) {
                                        Some(sketch) => sketch.insert_batch(&batch.values),
                                        None => {
                                            let mut sketch = w_factory.make();
                                            sketch.insert_batch(&batch.values);
                                            registry.insert(
                                                (batch.tenant.clone(), batch.key.clone()),
                                                sketch,
                                            );
                                        }
                                    }
                                    values_done += n;
                                    if !dirty.contains(&probe as &dyn KeyPair) {
                                        dirty.insert((batch.tenant.clone(), batch.key.clone()));
                                    }
                                    if let Some(plan) = &w_plan {
                                        if values_done - last_ckpt >= interval {
                                            if let Err(e) = write_registry_ckpt(
                                                i,
                                                plan,
                                                &registry,
                                                values_done,
                                                &w_metrics,
                                            ) {
                                                *w_ckpt_error
                                                    .lock()
                                                    .expect("ckpt error poisoned") = Some(e);
                                            }
                                            last_ckpt = values_done;
                                        }
                                    }
                                    // Feed the key's rollup under the
                                    // shared rollup mutex — deliberately
                                    // outside the wait-free surface.
                                    if let Some(rt) = &w_rollup {
                                        let mut states = w_rollup_states
                                            .lock()
                                            .expect("rollup states poisoned");
                                        let opened =
                                            if states.contains_key(&probe as &dyn KeyPair) {
                                                Ok(())
                                            } else {
                                                open_rollup_store(rt, &batch.tenant, &batch.key)
                                                    .map(|store| {
                                                        states.insert(
                                                            (
                                                                batch.tenant.clone(),
                                                                batch.key.clone(),
                                                            ),
                                                            RollupState {
                                                                window: None,
                                                                filled: 0,
                                                                store,
                                                            },
                                                        );
                                                    })
                                            };
                                        let result = opened.and_then(|()| {
                                            let state = states
                                                .get_mut(&probe as &dyn KeyPair)
                                                .expect("rollup state just ensured");
                                            feed_rollup(
                                                state,
                                                &batch.values,
                                                rt.options.window_values,
                                                &w_factory,
                                            )
                                        });
                                        if let Err(e) = result {
                                            *rt.error.lock().expect("rollup error poisoned") =
                                                Some(e.to_string());
                                        }
                                    }
                                    if let Some(m) = &w_metrics {
                                        m.engine.shard_events.record_many(i, n);
                                        m.engine.queue_depth[i].set(depth as u64);
                                    }
                                    if values_done - last_pub >= epoch_interval {
                                        publish_keymap(
                                            i,
                                            &w_cell,
                                            &registry,
                                            &mut published,
                                            &mut dirty,
                                            values_done,
                                            &w_metrics,
                                        );
                                        last_pub = values_done;
                                    }
                                    // Recycle the batch buffer before
                                    // acknowledging, so a producer
                                    // unblocked by `mark_done` finds it
                                    // in the pool.
                                    drop(batch);
                                    w_ring.mark_done(n);
                                }
                                PopState::Idle => {}
                                PopState::Closed => {
                                    publish_keymap(
                                        i,
                                        &w_cell,
                                        &registry,
                                        &mut published,
                                        &mut dirty,
                                        values_done,
                                        &w_metrics,
                                    );
                                    if let Some(ticket) = w_epoch_req.pending() {
                                        w_epoch_req.ack(ticket);
                                    }
                                    if let Some(ticket) = w_ckpt_req.pending() {
                                        if let Some(plan) = &w_plan {
                                            let result = write_registry_ckpt(
                                                i,
                                                plan,
                                                &registry,
                                                values_done,
                                                &w_metrics,
                                            );
                                            *w_ckpt_result
                                                .lock()
                                                .expect("ckpt result poisoned") = Some(result);
                                        }
                                        w_ckpt_req.ack(ticket);
                                    }
                                    return;
                                }
                            }
                        }
                    })
                    .expect("spawn keyed shard worker");
                KeyedShard {
                    ring,
                    cell,
                    epoch_req,
                    ckpt_req,
                    ckpt_result,
                    rollup: rollup_states,
                    worker: Some(worker),
                    ckpt_error,
                }
            })
            .collect();
        Ok(Self {
            shards,
            batch_pool,
            quotas: QuotaTable::new(&config.quotas, config.default_quota),
            rejected: Mutex::new(HashMap::new()),
            rejected_total: AtomicU64::new(0),
            events: AtomicU64::new(0),
            metrics,
            plan,
            rollup,
        })
    }

    fn make_plan(config: &KeyedEngineConfig) -> Result<Arc<KeyedCheckpointPlan<S>>, KeyedEngineError> {
        let ckpt = config
            .checkpoint
            .clone()
            .ok_or(KeyedEngineError::CheckpointingDisabled)?;
        std::fs::create_dir_all(&ckpt.dir).map_err(|e| KeyedEngineError::Io(e.to_string()))?;
        Ok(Arc::new(KeyedCheckpointPlan {
            num_shards: config.shards,
            encode: S::encode,
            config: ckpt,
        }))
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Values admitted past quota so far (enqueued or inserted).
    pub fn events_ingested(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Check and charge `tenant`'s quota for `n` values. Lock-free after
    /// the tenant's first batch (see [`QuotaTable`]); the bookkeeping
    /// mutexes below are touched only on the rejection path.
    fn check_quota(&self, tenant: &str, n: u64) -> Result<(), KeyedEngineError> {
        let Some(bucket) = self.quotas.bucket_for(tenant) else {
            return Ok(());
        };
        match bucket.try_take(n, self.quotas.now_ns()) {
            Ok(()) => Ok(()),
            Err(retry_after_ms) => {
                self.rejected_total.fetch_add(1, Ordering::Relaxed);
                *self
                    .rejected
                    .lock()
                    .expect("rejection table poisoned")
                    .entry(tenant.to_string())
                    .or_insert(0) += 1;
                if let Some(m) = &self.metrics {
                    m.quota_rejected.inc();
                }
                Err(KeyedEngineError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    retry_after_ms,
                })
            }
        }
    }

    /// Ingest a batch of values for one `(tenant, key)` pair.
    ///
    /// Callable from any thread (`&self`); the steady-state path is
    /// atomics only — GCRA quota charge, CAS slot claim on the home
    /// shard's ring. The batch is charged against the tenant's quota
    /// **before** touching the ring: an over-quota batch is rejected
    /// whole with a retry hint and consumes no shared capacity. An
    /// admitted batch spins/naps only when its home ring is full (global
    /// backpressure), with the wait recorded in the
    /// `backpressure_wait_ns` histogram and slot-claim retries in
    /// `handoff_retries`.
    ///
    /// Returns the number of values accepted (0 for an empty batch).
    ///
    /// At steady state this allocates nothing: the batch rides the ring
    /// in a recycled [`BufferPool`] buffer whose strings and value vec
    /// keep their capacity across trips.
    pub fn ingest(&self, tenant: &str, key: &str, values: &[f64]) -> Result<u64, KeyedEngineError> {
        self.ingest_fill(tenant, key, values.len() as u64, |buf| {
            buf.extend_from_slice(values)
        })
    }

    /// [`ingest`](Self::ingest) from raw **little-endian f64 wire
    /// bytes** — the server's borrowed-decode fast path. The values are
    /// decoded chunk-by-chunk straight into the pooled batch buffer, so
    /// a network frame reaches the sketch with exactly one copy and no
    /// intermediate `Vec`. `values_le.len()` must be a multiple of 8
    /// (trailing partial chunks are ignored, matching
    /// `chunks_exact(8)`).
    pub fn ingest_le(
        &self,
        tenant: &str,
        key: &str,
        values_le: &[u8],
    ) -> Result<u64, KeyedEngineError> {
        debug_assert_eq!(values_le.len() % 8, 0, "LE f64 payload must be 8-byte aligned");
        let n = (values_le.len() / 8) as u64;
        self.ingest_fill(tenant, key, n, |buf| {
            buf.reserve(values_le.len() / 8);
            for chunk in values_le.chunks_exact(8) {
                buf.push(f64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
            }
        })
    }

    /// Shared admission + handoff path: charge quota, fill a pooled
    /// batch via `fill`, push it to the home shard's ring.
    fn ingest_fill(
        &self,
        tenant: &str,
        key: &str,
        n: u64,
        fill: impl FnOnce(&mut Vec<f64>),
    ) -> Result<u64, KeyedEngineError> {
        if n == 0 {
            return Ok(0);
        }
        self.check_quota(tenant, n)?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        let mut batch = self.batch_pool.get();
        batch.tenant.push_str(tenant);
        batch.key.push_str(key);
        fill(&mut batch.values);
        debug_assert_eq!(batch.values.len() as u64, n);
        let report = self.shards[shard].ring.push(batch, n);
        if report.dropped {
            return Ok(0);
        }
        self.events.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.engine.events.add(n);
            m.engine.batches.inc();
            m.engine.queue_depth[shard].set(report.depth as u64);
            if report.retries > 0 {
                m.engine.handoff_retries.add(report.retries);
            }
            if report.waited_ns > 0 {
                m.engine.backpressure_wait_ns.record(report.waited_ns);
            }
        }
        Ok(n)
    }

    /// Block until every enqueued batch has been fully inserted **and**
    /// every shard has published a snapshot covering it — after `drain`,
    /// [`query`](Self::query) is exact.
    pub fn drain(&self) {
        for shard in &self.shards {
            shard.ring.wait_drained();
        }
        self.sync_snapshots();
    }

    /// Ask every worker to publish a fresh epoch and wait for the acks
    /// (workers service the mailbox between batches and on their ≤1 ms
    /// idle wakeups).
    fn sync_snapshots(&self) {
        let tickets: Vec<u64> = self
            .shards
            .iter()
            .map(|shard| {
                let ticket = shard.epoch_req.request();
                if let Some(worker) = &shard.worker {
                    worker.thread().unpark();
                }
                ticket
            })
            .collect();
        for (shard, ticket) in self.shards.iter().zip(tickets) {
            let ring = Arc::clone(&shard.ring);
            shard.epoch_req.wait(ticket, move || ring.is_dead());
        }
    }

    /// Wait-free point query: one key's latest published snapshot as a
    /// [`SnapshotHandle`] (quantiles/count/bounds answered zero-copy
    /// from the published bytes). Never blocks ingestion and never waits
    /// for it — the answer is at most one epoch behind the worker; call
    /// [`drain`](Self::drain) first for an exact barrier.
    pub fn query(&self, tenant: &str, key: &str) -> Result<SnapshotHandle<S>, KeyedEngineError> {
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        let map = self.shards[shard].cell.load();
        match map.get(&(tenant, key) as &dyn KeyPair) {
            Some(part) => Ok(SnapshotHandle::from_parts(vec![Arc::clone(part)])),
            None => Err(KeyedEngineError::UnknownKey {
                tenant: tenant.to_string(),
                key: key.to_string(),
            }),
        }
    }

    /// Wait-free cross-key query: a [`SnapshotHandle`] over **every key
    /// of `tenant` whose key starts with `prefix`** (empty prefix = all
    /// of the tenant's keys), in sorted key order so the lazy merge is
    /// deterministic. Zero matching keys is not an error — the handle
    /// just answers `count() == 0` / `merged() == Ok(None)`.
    pub fn query_prefix(&self, tenant: &str, prefix: &str) -> SnapshotHandle<S> {
        let mut matches: Vec<(String, Arc<ShardSnapshot>)> = Vec::new();
        for shard in &self.shards {
            let map = shard.cell.load();
            for ((t, k), part) in map.iter() {
                if t == tenant && k.starts_with(prefix) {
                    matches.push((k.clone(), Arc::clone(part)));
                }
            }
        }
        matches.sort_by(|a, b| a.0.cmp(&b.0));
        SnapshotHandle::from_parts(matches.into_iter().map(|(_, part)| part).collect())
    }

    /// Write every shard's registry checkpoint **now**: drain (so the
    /// cut covers every acknowledged batch), then ask each worker to
    /// encode and atomically write its registry — the worker is the only
    /// thread that can see a consistent registry, so the request travels
    /// through the same mailbox protocol as snapshot syncs. This is the
    /// durable-cut primitive behind the server's `Checkpoint` op and its
    /// graceful shutdown.
    pub fn checkpoint_now(&self) -> Result<(), KeyedEngineError> {
        if self.plan.is_none() {
            return Err(KeyedEngineError::CheckpointingDisabled);
        }
        self.drain();
        let tickets: Vec<u64> = self
            .shards
            .iter()
            .map(|shard| {
                *shard.ckpt_result.lock().expect("ckpt result poisoned") = None;
                let ticket = shard.ckpt_req.request();
                if let Some(worker) = &shard.worker {
                    worker.thread().unpark();
                }
                ticket
            })
            .collect();
        for (shard, ticket) in self.shards.iter().zip(tickets) {
            let ring = Arc::clone(&shard.ring);
            shard.ckpt_req.wait(ticket, move || ring.is_dead());
            if let Some(Err(e)) = shard.ckpt_result.lock().expect("ckpt result poisoned").take()
            {
                return Err(KeyedEngineError::Io(e));
            }
        }
        Ok(())
    }

    /// Range-query one key's rollup store over `[t0, t1)` in the
    /// store's time units (fine slot `i` covers the key's values
    /// `[i·window_values, (i+1)·window_values)` in ingest order, at
    /// slot starts `i × tiers[0].width`).
    ///
    /// Only windows already closed *and processed by the shard worker*
    /// are visible — call [`drain`](Self::drain) first for a barrier.
    /// When the key has never been touched by this process but has a
    /// spill directory, the store is lazily recovered from disk, so a
    /// fresh process answers range queries for keys it never ingested.
    ///
    /// Fails with [`KeyedEngineError::RollupDisabled`] when the engine
    /// was spawned without [`RollupOptions`], and with
    /// [`KeyedEngineError::UnknownKey`] when the key has no rollup
    /// state in memory or on disk.
    pub fn range_query(
        &self,
        tenant: &str,
        key: &str,
        t0: u64,
        t1: u64,
    ) -> Result<RangeAnswer<S>, KeyedEngineError> {
        let (states, entry) = self.rollup_state_for(tenant, key)?;
        states[&entry]
            .store
            .range_query(t0, t1)
            .map_err(|e| KeyedEngineError::Rollup(e.to_string()))
    }

    /// Lock the owning shard's rollup map, lazily recovering the key's
    /// store from its spill directory when the key is cold. Shared by
    /// [`range_query`](Self::range_query) and
    /// [`range_query_quantiles`](Self::range_query_quantiles).
    #[allow(clippy::type_complexity)]
    fn rollup_state_for(
        &self,
        tenant: &str,
        key: &str,
    ) -> Result<
        (
            std::sync::MutexGuard<'_, HashMap<(String, String), RollupState<S>>>,
            (String, String),
        ),
        KeyedEngineError,
    > {
        let rt = self
            .rollup
            .as_ref()
            .ok_or(KeyedEngineError::RollupDisabled)?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        let mut states = self.shards[shard]
            .rollup
            .lock()
            .expect("rollup states poisoned");
        let entry = (tenant.to_string(), key.to_string());
        if !states.contains_key(&entry) {
            let config = rt.options.store_config(tenant, key);
            let on_disk = config.spill_dir.as_ref().is_some_and(|d| d.is_dir());
            if !on_disk {
                return Err(KeyedEngineError::UnknownKey {
                    tenant: tenant.to_string(),
                    key: key.to_string(),
                });
            }
            let store = open_rollup_store(rt, tenant, key)
                .map_err(|e| KeyedEngineError::Rollup(e.to_string()))?;
            states.insert(
                entry.clone(),
                RollupState {
                    window: None,
                    filled: 0,
                    store,
                },
            );
        }
        Ok((states, entry))
    }

    /// The rollup ingest frontier of one key (exclusive end of its
    /// cascaded windows, in store time units), `None` when the key has
    /// no in-memory rollup state.
    pub fn rollup_frontier(&self, tenant: &str, key: &str) -> Option<u64> {
        self.rollup.as_ref()?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        self.shards[shard]
            .rollup
            .lock()
            .expect("rollup states poisoned")
            .get(&(tenant.to_string(), key.to_string()))
            .map(|s| s.store.frontier())
    }

    /// Last rollup error (`None` = healthy or rollups disabled).
    /// Rollups are best-effort: a failed spill or cascade never stops
    /// ingestion, it lands here instead.
    pub fn rollup_error(&self) -> Option<String> {
        self.rollup
            .as_ref()
            .and_then(|rt| rt.error.lock().expect("rollup error poisoned").clone())
    }

    /// Every key of `tenant` in the shards' published maps, sorted.
    /// Wait-free (reads the published epochs, like
    /// [`query`](Self::query)); call [`drain`](Self::drain) first to see
    /// keys whose first batch is still in flight.
    pub fn keys(&self, tenant: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.cell.load();
            out.extend(
                map.keys()
                    .filter(|(t, _)| t == tenant)
                    .map(|(_, k)| k.clone()),
            );
        }
        out.sort();
        out
    }

    /// Operational stats (the server's `Stats` op). Key counts come
    /// from the published epochs, so they are point-in-time and
    /// wait-free.
    pub fn stats(&self) -> KeyedEngineStats {
        let keys = self
            .shards
            .iter()
            .map(|s| s.cell.load().len() as u64)
            .sum();
        if let Some(m) = &self.metrics {
            m.keys.set(keys);
        }
        let mut by_tenant: Vec<(String, u64)> = self
            .rejected
            .lock()
            .expect("rejection table poisoned")
            .iter()
            .map(|(t, n)| (t.clone(), *n))
            .collect();
        by_tenant.sort();
        KeyedEngineStats {
            events_ingested: self.events_ingested(),
            keys,
            shards: self.shards.len() as u64,
            quota_rejected_batches: self.rejected_total.load(Ordering::Relaxed),
            quota_rejected_by_tenant: by_tenant,
        }
    }

    /// Last checkpoint-write error per shard (`None` = healthy);
    /// checkpointing is best-effort and never stops ingestion.
    pub fn checkpoint_errors(&self) -> Vec<Option<String>> {
        self.shards
            .iter()
            .map(|s| s.ckpt_error.lock().expect("ckpt error poisoned").clone())
            .collect()
    }

    /// Drain, close the rings, and join the workers (graceful
    /// shutdown). Call [`checkpoint_now`](Self::checkpoint_now) first
    /// for a durable final cut.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        for shard in &self.shards {
            shard.ring.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                worker.thread().unpark();
                let _ = worker.join();
            }
        }
    }
}

impl<S> KeyedEngine<S>
where
    S: MergeableSketch
        + SketchSerialize
        + qsketch_core::flatwire::SketchView
        + Clone
        + Send
        + 'static,
{
    /// Range-query one key's rollup store for quantile values only,
    /// letting warm (spilled) single-slot ranges be answered straight
    /// from slot bytes with no sketch rehydration — see
    /// [`RollupStore::range_query_quantiles`]. Cold keys with a spill
    /// directory are lazily recovered exactly as
    /// [`range_query`](Self::range_query) does; the recovered store's
    /// spilled slots then serve view queries without decoding.
    pub fn range_query_quantiles(
        &self,
        tenant: &str,
        key: &str,
        t0: u64,
        t1: u64,
        qs: &[f64],
    ) -> Result<RangeQuantiles, KeyedEngineError> {
        let (states, entry) = self.rollup_state_for(tenant, key)?;
        states[&entry]
            .store
            .range_query_quantiles(t0, t1, qs)
            .map_err(|e| match e {
                crate::rollup::RollupError::Query(q) => {
                    KeyedEngineError::Sketch(SketchError::Query(q))
                }
                other => KeyedEngineError::Rollup(other.to_string()),
            })
    }
}

impl<S> Drop for KeyedEngine<S> {
    fn drop(&mut self) {
        // Everything already enqueued is still inserted before the
        // workers see the close; `finish` is the explicit form.
        for shard in &self.shards {
            shard.ring.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                worker.thread().unpark();
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use qsketch_core::metrics::MetricsRegistry;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;
    use qsketch_kll::KllSketch;

    fn dds() -> impl Fn() -> DdSketch + Clone + Send {
        || DdSketch::unbounded(0.01)
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qsketch-keyed-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn per_key_streams_stay_separate() {
        let engine = EngineBuilder::keyed(3).spawn(dds()).unwrap();
        for i in 1..=2_000u64 {
            engine.ingest("acme", "fast", &[10.0 + (i % 5) as f64]).unwrap();
            engine.ingest("acme", "slow", &[1_000.0 + (i % 7) as f64]).unwrap();
            engine.ingest("globex", "fast", &[50.0]).unwrap();
        }
        engine.drain();
        assert_eq!(engine.events_ingested(), 6_000);
        let fast = engine.query("acme", "fast").unwrap().quantile(0.5).unwrap();
        let slow = engine.query("acme", "slow").unwrap().quantile(0.5).unwrap();
        assert!(fast < 20.0, "fast p50 {fast}");
        assert!(slow > 900.0, "slow p50 {slow}");
        // Same key name under another tenant is a different stream.
        let other = engine.query("globex", "fast").unwrap().quantile(0.5).unwrap();
        assert!((other - 50.0).abs() / 50.0 <= 0.01, "globex fast p50 {other}");
        assert_eq!(
            engine.keys("acme"),
            vec!["fast".to_string(), "slow".to_string()]
        );
        engine.finish();
    }

    #[test]
    fn unknown_key_is_a_typed_error() {
        let engine = EngineBuilder::keyed(1).spawn(dds()).unwrap();
        let err = engine.query("nobody", "nothing").unwrap_err();
        assert!(matches!(err, KeyedEngineError::UnknownKey { .. }));
        assert!(err.to_string().contains("nobody"));
    }

    #[test]
    fn query_prefix_folds_matching_keys_lazily() {
        let engine = EngineBuilder::keyed(4).spawn(dds()).unwrap();
        for i in 1..=500u64 {
            engine.ingest("t", "api.a", &[i as f64]).unwrap();
            engine.ingest("t", "api.b", &[i as f64 + 500.0]).unwrap();
            engine.ingest("t", "db.c", &[1e6]).unwrap();
            engine.ingest("other", "api.z", &[1e6]).unwrap();
        }
        engine.drain();
        let api = engine.query_prefix("t", "api.");
        assert_eq!(api.count().unwrap(), 1_000);
        let p99 = api.quantile(0.99).unwrap();
        assert!(p99 < 1_100.0, "api p99 {p99} should exclude db.c and other tenant");
        let merged = api.merged().unwrap().unwrap();
        assert_eq!(merged.count(), 1_000);
        assert!(engine.query_prefix("t", "nope.").merged().unwrap().is_none());
        assert_eq!(engine.query_prefix("t", "nope.").count().unwrap(), 0);
        engine.finish();
    }

    #[test]
    fn queries_are_wait_free_snapshots_not_barriers() {
        // A query right after ingest (no drain) must return without
        // blocking, answering from the last published epoch — at most
        // epoch_interval values behind the ring's acknowledged count.
        let engine = EngineBuilder::keyed(1)
            .epoch_interval(100)
            .spawn(dds())
            .unwrap();
        for i in 1..=1_000u64 {
            engine.ingest("t", "k", &[i as f64]).unwrap();
        }
        for shard in &engine.shards {
            shard.ring.wait_drained(); // settle the ring, skip the sync
        }
        let handle = engine.query("t", "k").unwrap();
        let seen = handle.count().unwrap();
        assert!(seen >= 900, "published snapshot lags more than one epoch: {seen}");
        assert!(handle.max_epoch() >= 9, "epoch {}", handle.max_epoch());
        engine.drain();
        assert_eq!(engine.query("t", "k").unwrap().count().unwrap(), 1_000);
        engine.finish();
    }

    #[test]
    fn quota_rejects_noisy_tenant_not_quiet_one() {
        let engine = EngineBuilder::keyed(2)
            .tenant_quota("noisy", TenantQuota::per_sec(100.0).with_burst(100.0))
            .metrics(&MetricsRegistry::new(), "keyed")
            .spawn(dds())
            .unwrap();
        // The noisy tenant burns its burst, then gets rejected.
        let mut rejected = 0;
        for _ in 0..100 {
            match engine.ingest("noisy", "k", &[1.0; 10]) {
                Ok(_) => {}
                Err(KeyedEngineError::QuotaExceeded {
                    tenant,
                    retry_after_ms,
                }) => {
                    assert_eq!(tenant, "noisy");
                    assert!(retry_after_ms > 0);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected >= 80, "rejected {rejected}/100");
        // The quiet tenant is untouched.
        for _ in 0..100 {
            engine.ingest("quiet", "k", &[1.0; 10]).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.quota_rejected_batches, rejected);
        assert_eq!(stats.quota_rejected_by_tenant.len(), 1);
        assert_eq!(stats.quota_rejected_by_tenant[0].0, "noisy");
        engine.finish();
    }

    #[test]
    fn default_quota_buckets_are_per_tenant_after_warmup() {
        // Two default-quota tenants must not share a budget: each gets
        // its own lazily installed GCRA bucket.
        let engine = EngineBuilder::keyed(1)
            .default_quota(TenantQuota::per_sec(100.0).with_burst(100.0))
            .spawn(dds())
            .unwrap();
        for _ in 0..10 {
            engine.ingest("a", "k", &[1.0; 10]).unwrap();
        }
        // Tenant a's budget is spent; tenant b's is untouched.
        assert!(matches!(
            engine.ingest("a", "k", &[1.0; 10]),
            Err(KeyedEngineError::QuotaExceeded { .. })
        ));
        engine.ingest("b", "k", &[1.0; 10]).unwrap();
        engine.finish();
    }

    #[test]
    fn oversized_batch_can_never_pass_and_says_so() {
        let engine = EngineBuilder::keyed(1)
            .default_quota(TenantQuota::per_sec(10.0).with_burst(10.0))
            .spawn(dds())
            .unwrap();
        let err = engine.ingest("t", "k", &[1.0; 1_000]).unwrap_err();
        assert_eq!(
            err,
            KeyedEngineError::QuotaExceeded {
                tenant: "t".into(),
                retry_after_ms: 0
            }
        );
        engine.finish();
    }

    #[test]
    fn checkpoint_now_then_recover_is_bit_identical() {
        let dir = ckpt_dir("recover");
        let factory = || KllSketch::with_seed(200, 0xC0FFEE);
        let engine = EngineBuilder::keyed(3)
            .checkpoints(CheckpointConfig::new(&dir, u64::MAX))
            .spawn(factory)
            .unwrap();
        for i in 0..10_000u64 {
            let key = format!("k{}", i % 7);
            let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
            engine.ingest("acme", &key, &[x + 1e-9]).unwrap();
        }
        engine.checkpoint_now().unwrap();
        let mut expected = Vec::new();
        for k in 0..7 {
            let handle = engine.query("acme", &format!("k{k}")).unwrap();
            expected.push([0.01, 0.5, 0.99, 1.0].map(|q| handle.quantile(q).unwrap().to_bits()));
        }
        engine.finish();

        let recovered: KeyedEngine<KllSketch> = EngineBuilder::keyed(3)
            .checkpoints(CheckpointConfig::new(&dir, u64::MAX))
            .recover(factory)
            .unwrap();
        for (k, want) in expected.iter().enumerate() {
            let handle = recovered.query("acme", &format!("k{k}")).unwrap();
            let got = [0.01, 0.5, 0.99, 1.0].map(|q| handle.quantile(q).unwrap().to_bits());
            assert_eq!(&got, want, "key k{k}");
        }
        recovered.finish();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_checkpoints_are_written_by_workers() {
        let dir = ckpt_dir("periodic");
        let engine = EngineBuilder::keyed(2)
            .checkpoints(CheckpointConfig::new(&dir, 500))
            .spawn(|| KllSketch::with_seed(200, 1))
            .unwrap();
        for i in 0..4_000u64 {
            engine
                .ingest("t", &format!("k{}", i % 4), &[i as f64 + 1.0])
                .unwrap();
        }
        engine.drain();
        assert!(engine.checkpoint_errors().iter().all(Option::is_none));
        // Both shards crossed the 500-value interval.
        for i in 0..2 {
            let ckpt = read_registry(&CheckpointConfig::new(&dir, 500), i)
                .unwrap()
                .unwrap_or_else(|| panic!("missing registry-{i}.ckpt"))
                .unwrap();
            assert_eq!(ckpt.num_shards, 2);
            assert!(ckpt.values_done >= 500);
        }
        engine.finish();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_wrong_topology() {
        let dir = ckpt_dir("topology");
        let engine = EngineBuilder::keyed(2)
            .checkpoints(CheckpointConfig::new(&dir, u64::MAX))
            .spawn(|| KllSketch::with_seed(200, 1))
            .unwrap();
        engine.ingest("t", "k", &[1.0, 2.0, 3.0]).unwrap();
        engine.checkpoint_now().unwrap();
        engine.finish();
        let err = EngineBuilder::keyed(3)
            .checkpoints(CheckpointConfig::new(&dir, u64::MAX))
            .recover(|| KllSketch::with_seed(200, 1))
            .err()
            .expect("3-shard recovery must fail");
        assert!(matches!(err, KeyedEngineError::TopologyMismatch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointing_disabled_is_a_typed_error() {
        let engine = EngineBuilder::keyed(1)
            .spawn(|| KllSketch::with_seed(200, 1))
            .unwrap();
        assert_eq!(
            engine.checkpoint_now().unwrap_err(),
            KeyedEngineError::CheckpointingDisabled
        );
        // Recovery without a checkpoint config is the same typed error.
        let err = EngineBuilder::keyed(1)
            .recover(|| KllSketch::with_seed(200, 1))
            .err()
            .expect("recover without checkpoints must fail");
        assert_eq!(err, KeyedEngineError::CheckpointingDisabled);
        engine.finish();
    }

    fn window_tiers() -> Vec<crate::rollup::TierSpec> {
        use crate::rollup::TierSpec;
        vec![
            TierSpec { width: 1, keep: 8 },
            TierSpec { width: 4, keep: 8 },
            TierSpec { width: 16, keep: 8 },
        ]
    }

    #[test]
    fn rollup_windows_cascade_and_answer_range_queries() {
        let engine = EngineBuilder::keyed(2)
            .rollup(RollupOptions::new(100, window_tiers()))
            .spawn(dds())
            .unwrap();
        // 32 full windows of 100 values, split across ragged batches,
        // plus 50 trailing values that never close a window.
        for i in 0..(3_250 / 13) {
            engine
                .ingest(
                    "acme",
                    "lat",
                    &(0..13).map(|j| (i * 13 + j) as f64 + 1.0).collect::<Vec<f64>>(),
                )
                .unwrap();
        }
        engine.ingest("acme", "lat", &[1.0; 3_250 - 13 * (3_250 / 13)]).unwrap();
        engine.drain();
        assert_eq!(engine.rollup_error(), None);
        assert_eq!(engine.rollup_frontier("acme", "lat"), Some(32));
        let all = engine.range_query("acme", "lat", 0, 32).unwrap();
        assert_eq!(all.sketch.unwrap().count(), 3_200, "partial window excluded");
        // 32 aligned windows decompose into 2 tier-2 slots.
        assert_eq!(all.merged_slots, 2);
        // [20, 32) decomposes into 3 tier-1 slots (tier 0 only retains
        // the newest 8 windows, but tier 1 still covers this range).
        let mid = engine.range_query("acme", "lat", 20, 32).unwrap();
        assert_eq!(mid.sketch.unwrap().count(), 1_200);
        assert_eq!(mid.merged_slots, 3);
        engine.finish();
    }

    #[test]
    fn rollup_spills_per_key_and_recovers_in_a_fresh_process() {
        let root = ckpt_dir("rollup-spill");
        let options = RollupOptions::new(50, window_tiers())
            .with_spill_root(&root)
            .with_hot_slots(2);
        let engine = EngineBuilder::keyed(2)
            .rollup(options.clone())
            .spawn(dds())
            .unwrap();
        for i in 0..800u64 {
            engine.ingest("acme", "a/b c", &[i as f64 + 1.0]).unwrap();
            engine.ingest("globex", "k", &[2.0 * i as f64 + 1.0]).unwrap();
        }
        engine.drain();
        assert_eq!(engine.rollup_error(), None);
        let want = engine.range_query("acme", "a/b c", 0, 16).unwrap();
        let want_bits = [0.1, 0.5, 0.9]
            .map(|q| want.sketch.as_ref().unwrap().query(q).unwrap().to_bits());
        engine.finish();
        // The per-key dir is operator-readable and filesystem-safe.
        let dirs: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(dirs.len(), 2);
        assert!(dirs.iter().any(|d| d.ends_with("-acme-a_b_c")), "{dirs:?}");

        // A fresh engine that never ingested the key lazily recovers
        // its store from disk on the first range query.
        let fresh = EngineBuilder::keyed(2).rollup(options).spawn(dds()).unwrap();
        let got = fresh.range_query("acme", "a/b c", 0, 16).unwrap();
        assert_eq!(got.parts, want.parts);
        let got_bits = [0.1, 0.5, 0.9]
            .map(|q| got.sketch.as_ref().unwrap().query(q).unwrap().to_bits());
        assert_eq!(got_bits, want_bits, "recovered answers must be bit-identical");
        // A key with no state anywhere is still UnknownKey.
        assert!(matches!(
            fresh.range_query("acme", "nope", 0, 16),
            Err(KeyedEngineError::UnknownKey { .. })
        ));
        fresh.finish();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn range_query_without_rollup_is_a_typed_error() {
        let engine = EngineBuilder::keyed(1).spawn(dds()).unwrap();
        assert!(matches!(
            engine.range_query("t", "k", 0, 10),
            Err(KeyedEngineError::RollupDisabled)
        ));
        assert_eq!(engine.rollup_frontier("t", "k"), None);
        engine.finish();
    }

    #[test]
    fn multi_producer_ingest_from_many_threads() {
        let engine = Arc::new(EngineBuilder::keyed(2).spawn(dds()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let e = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    e.ingest(&format!("tenant-{t}"), "k", &[i as f64 + 1.0])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.drain();
        assert_eq!(engine.events_ingested(), 4_000);
        let stats = engine.stats();
        assert_eq!(stats.keys, 4);
        assert_eq!(stats.quota_rejected_batches, 0);
        for t in 0..4 {
            let handle = engine.query(&format!("tenant-{t}"), "k").unwrap();
            assert_eq!(handle.count().unwrap(), 1_000);
        }
    }
}

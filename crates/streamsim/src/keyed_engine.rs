//! Multi-tenant keyed sharded ingestion: the serving-side sibling of
//! [`crate::engine::ShardedEngine`].
//!
//! The plain sharded engine summarises **one** stream across N shards
//! (round-robin, merge-on-query). A quantile *service* faces the
//! transposed problem: **millions of independent streams** — one per
//! `(tenant, metric-key)` pair — each of which must stay queryable on
//! its own. [`KeyedEngine`] restructures the same worker/queue/merge
//! machinery around that shape:
//!
//! ```text
//!                 hash(tenant,key) % N            per-shard registry
//!  producers ──▶ router ──[KeyedBatch]──▶ worker i ──▶ { (tenant,key) → sketch }
//!  (any thread)     │                                       │
//!                   └── per-tenant token-bucket quota        └─ snapshot / merge
//!                       (reject, don't block)                   on query
//! ```
//!
//! * **Hash routing** ([`crate::routing`]): every value of a key lands on
//!   `shard_for(hash_pair(tenant, key), N)`, so a point query touches
//!   exactly one shard's registry and cross-key queries merge snapshots
//!   (mergeability, §2.4 — the property arXiv:2004.08604 leans on for
//!   UDDSketch's distributed story).
//! * **Registry per shard** (the `streamsim::keyed` per-key-state idea,
//!   without windows): a `HashMap<(tenant, key), S>` owned by the shard
//!   worker, sketches minted lazily from a shared
//!   [`SketchFactory`] — every key starts from the same initial state,
//!   which is what keeps recovery bit-identical.
//! * **Quotas ride the backpressure machinery, inverted.** Queue-full
//!   backpressure still blocks (a *global* overload must slow everyone),
//!   but a tenant exceeding its own token-bucket budget is **rejected
//!   immediately** with a retry hint instead of being allowed to fill
//!   the shared queues — the noisy neighbor never converts its overload
//!   into other tenants' latency. Rejections are counted per tenant and
//!   in the `quota_rejected` metric.
//! * **Ingestion is multi-producer**: [`ingest`](KeyedEngine::ingest)
//!   takes `&self`, so one engine behind an `Arc` serves every server
//!   connection thread concurrently.
//! * **Checkpoints** write each shard's whole registry as one atomic
//!   [`RegistryCheckpoint`] file. There is no replay contract (a network
//!   stream cannot be replayed by the caller), so recovery restores
//!   state *as of the last checkpoint* — the server exposes a
//!   synchronous checkpoint op for a durable cut.
//!
//! # Example
//!
//! ```
//! use qsketch_ddsketch::DdSketch;
//! use qsketch_core::QuantileSketch;
//! use qsketch_streamsim::keyed_engine::{KeyedEngine, KeyedEngineConfig};
//!
//! let engine = KeyedEngine::spawn(
//!     KeyedEngineConfig::new(2),
//!     || DdSketch::unbounded(0.01),
//! )
//! .unwrap();
//! for i in 1..=1_000 {
//!     engine.ingest("acme", "checkout.latency", vec![i as f64]).unwrap();
//!     engine.ingest("acme", "search.latency", vec![(i % 10) as f64 + 1.0]).unwrap();
//! }
//! engine.drain();
//! let p50 = engine.quantile("acme", "checkout.latency", 0.5).unwrap();
//! assert!((p50 - 500.0).abs() / 500.0 <= 0.01);
//! // Cross-key query: merge every "…latency" sketch of the tenant.
//! let merged = engine.merged_prefix("acme", "").unwrap().unwrap();
//! assert_eq!(merged.count(), 2_000);
//! engine.finish();
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use qsketch_core::codec::SketchSerialize;
use qsketch_core::sketch::{
    merge_tree, MergeableSketch, SketchError, SketchFactory,
};

use crate::checkpoint::{
    read_registry, write_atomic, CheckpointConfig, RegistryCheckpoint, RegistryEntry,
};
use crate::engine::BoundedQueue;
use crate::metrics::{KeyedEngineMetrics, RollupMetrics};
use crate::rollup::{RangeAnswer, RangeQuantiles, RollupConfig, RollupStore, TierSpec};
use crate::routing::{hash_pair, shard_for};

/// Default bounded-queue capacity per shard, in ingest batches.
pub const DEFAULT_KEYED_QUEUE_CAPACITY: usize = 256;

/// A per-tenant ingest budget: a token bucket refilled at
/// `events_per_sec`, holding at most `burst` tokens. One inserted value
/// costs one token; a batch that cannot be paid for is rejected whole.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained refill rate, values per second.
    pub events_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota of `events_per_sec` sustained, with a burst of one
    /// second's worth of events (min 1).
    pub fn per_sec(events_per_sec: f64) -> Self {
        Self {
            events_per_sec,
            burst: events_per_sec.max(1.0),
        }
    }

    /// Override the burst capacity (min 1 token).
    pub fn with_burst(mut self, burst: f64) -> Self {
        self.burst = burst.max(1.0);
        self
    }
}

/// Per-key hierarchical rollup riding on the keyed workers: every
/// `window_values` inserted values of a `(tenant, key)` pair close one
/// fine-tier window of that key's [`RollupStore`], which then cascades,
/// ages out, and answers range queries in *window units* (fine slot `i`
/// covers values `[i·window_values, (i+1)·window_values)` of the key's
/// stream, in ingest order).
///
/// With a `spill_root`, each key's store writes through to its own
/// subdirectory (`<hash>-<tenant>-<key>`, non-portable characters
/// replaced) and is lazily recovered from disk the next time the key is
/// touched — including by a process that never ingested it.
#[derive(Debug, Clone)]
pub struct RollupOptions {
    /// Values per fine-tier window. A window closes (and is ingested
    /// into the store) only when full; a trailing partial window is
    /// queryable via [`KeyedEngine::snapshot`] but not via range
    /// queries, and is not durable.
    pub window_values: u64,
    /// The tier ladder, finest first, widths in window units (see
    /// [`RollupStore::new`] for the invariants).
    pub tiers: Vec<TierSpec>,
    /// Root directory for per-key spill subdirectories (`None` =
    /// memory-only rollups, not recoverable).
    pub spill_root: Option<PathBuf>,
    /// Newest slots per tier kept decoded when spilling (see
    /// [`RollupConfig::with_hot_slots`]).
    pub hot_slots: usize,
}

impl RollupOptions {
    /// Rollups of `window_values`-value windows over `tiers`, memory
    /// only, default hot-slot count.
    pub fn new(window_values: u64, tiers: Vec<TierSpec>) -> Self {
        Self {
            window_values: window_values.max(1),
            tiers,
            spill_root: None,
            hot_slots: RollupConfig::new(Vec::new()).hot_slots,
        }
    }

    /// Spill every key's store under `root` (created on first write).
    #[must_use]
    pub fn with_spill_root(mut self, root: impl Into<PathBuf>) -> Self {
        self.spill_root = Some(root.into());
        self
    }

    /// Set how many newest slots per tier stay decoded in memory.
    #[must_use]
    pub fn with_hot_slots(mut self, hot: usize) -> Self {
        self.hot_slots = hot;
        self
    }

    /// The store config for one key (per-key spill dir resolved).
    fn store_config(&self, tenant: &str, key: &str) -> RollupConfig {
        let mut config =
            RollupConfig::new(self.tiers.clone()).with_hot_slots(self.hot_slots);
        if let Some(root) = &self.spill_root {
            config = config.with_spill_dir(root.join(rollup_dir_name(tenant, key)));
        }
        config
    }
}

/// Filesystem-safe per-key spill directory name: the routing hash (for
/// uniqueness) plus sanitized, truncated tenant/key (for operators).
fn rollup_dir_name(tenant: &str, key: &str) -> String {
    fn sanitize(s: &str) -> String {
        s.chars()
            .take(40)
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    }
    format!(
        "{:016x}-{}-{}",
        hash_pair(tenant, key),
        sanitize(tenant),
        sanitize(key)
    )
}

/// Configuration for a [`KeyedEngine`].
///
/// ```
/// use qsketch_streamsim::keyed_engine::{KeyedEngineConfig, TenantQuota};
///
/// let config = KeyedEngineConfig::new(4)
///     .with_queue_capacity(128)
///     .with_tenant_quota("free-tier", TenantQuota::per_sec(10_000.0))
///     .with_default_quota(TenantQuota::per_sec(1_000_000.0));
/// assert_eq!(config.shards, 4);
/// assert_eq!(config.quotas.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KeyedEngineConfig {
    /// Number of shard worker threads (and shard registries).
    pub shards: usize,
    /// Bounded capacity of each shard's queue, in ingest batches.
    pub queue_capacity: usize,
    /// Per-tenant quotas by tenant name.
    pub quotas: Vec<(String, TenantQuota)>,
    /// Quota applied to tenants without an explicit entry (`None` =
    /// unlimited).
    pub default_quota: Option<TenantQuota>,
    /// Periodic registry checkpointing (`None` = only explicit
    /// [`KeyedEngine::checkpoint_now`] calls write files).
    pub checkpoint: Option<CheckpointConfig>,
    /// Per-key hierarchical rollups (`None` = range queries are a typed
    /// error).
    pub rollup: Option<RollupOptions>,
}

impl KeyedEngineConfig {
    /// Config with `shards` workers, default queue capacity, no quotas,
    /// no checkpointing.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            queue_capacity: DEFAULT_KEYED_QUEUE_CAPACITY,
            quotas: Vec::new(),
            default_quota: None,
            checkpoint: None,
            rollup: None,
        }
    }

    /// Override the per-shard queue capacity in batches (min 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Set `tenant`'s ingest quota (replacing an earlier entry).
    pub fn with_tenant_quota(mut self, tenant: &str, quota: TenantQuota) -> Self {
        self.quotas.retain(|(t, _)| t != tenant);
        self.quotas.push((tenant.to_string(), quota));
        self
    }

    /// Apply `quota` to every tenant without an explicit entry.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = Some(quota);
        self
    }

    /// Enable periodic registry checkpoints (and recovery) in
    /// `ckpt.dir`, every `ckpt.interval_values` values per shard.
    pub fn with_checkpoint(mut self, ckpt: CheckpointConfig) -> Self {
        self.checkpoint = Some(ckpt);
        self
    }

    /// Enable per-key hierarchical rollups (see [`RollupOptions`]).
    pub fn with_rollup(mut self, rollup: RollupOptions) -> Self {
        self.rollup = Some(rollup);
        self
    }
}

/// Error from constructing, feeding, querying, or recovering a
/// [`KeyedEngine`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KeyedEngineError {
    /// The configuration asked for zero shards.
    NoShards,
    /// A tenant exceeded its ingest quota; the batch was rejected whole.
    QuotaExceeded {
        /// The over-budget tenant.
        tenant: String,
        /// Suggested wait before retrying, in milliseconds (0 when the
        /// batch is larger than the tenant's burst capacity and could
        /// never be admitted — split it instead).
        retry_after_ms: u64,
    },
    /// A query named a `(tenant, key)` pair with no recorded values.
    UnknownKey {
        /// Tenant queried.
        tenant: String,
        /// Key queried.
        key: String,
    },
    /// A sketch operation (query/merge/decode) failed.
    Sketch(SketchError),
    /// A checkpoint file could not be read or written.
    Io(String),
    /// A checkpoint was taken under a different shard count, or holds a
    /// key that does not hash to its shard.
    TopologyMismatch(String),
    /// The engine was spawned without a checkpoint config but a
    /// checkpoint operation was requested.
    CheckpointingDisabled,
    /// The engine was spawned without rollup options but a range query
    /// was requested.
    RollupDisabled,
    /// A rollup-store operation failed (stringified [`crate::rollup::RollupError`]).
    Rollup(String),
}

impl std::fmt::Display for KeyedEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyedEngineError::NoShards => write!(f, "engine needs at least one shard"),
            KeyedEngineError::QuotaExceeded {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "tenant {tenant} exceeded its ingest quota (retry after {retry_after_ms} ms)"
            ),
            KeyedEngineError::UnknownKey { tenant, key } => {
                write!(f, "no sketch for tenant {tenant}, key {key}")
            }
            KeyedEngineError::Sketch(e) => write!(f, "sketch operation failed: {e}"),
            KeyedEngineError::Io(e) => write!(f, "checkpoint io failed: {e}"),
            KeyedEngineError::TopologyMismatch(e) => {
                write!(f, "checkpoint topology mismatch: {e}")
            }
            KeyedEngineError::CheckpointingDisabled => {
                write!(f, "engine was spawned without a checkpoint config")
            }
            KeyedEngineError::RollupDisabled => {
                write!(f, "engine was spawned without rollup options")
            }
            KeyedEngineError::Rollup(e) => write!(f, "rollup operation failed: {e}"),
        }
    }
}

impl std::error::Error for KeyedEngineError {}

impl From<SketchError> for KeyedEngineError {
    fn from(e: SketchError) -> Self {
        KeyedEngineError::Sketch(e)
    }
}

/// One routed ingest batch: a run of values for a single
/// `(tenant, key)` pair.
struct KeyedBatch {
    tenant: String,
    key: String,
    values: Vec<f64>,
}

/// A token bucket tracking one tenant's ingest budget.
#[derive(Debug)]
struct TokenBucket {
    quota: TenantQuota,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(quota: TenantQuota, now: Instant) -> Self {
        Self {
            quota,
            tokens: quota.burst,
            last_refill: now,
        }
    }

    /// Try to pay for `n` values; on failure return the suggested retry
    /// delay in milliseconds (0 = the batch exceeds the burst capacity
    /// outright).
    fn try_take(&mut self, n: f64, now: Instant) -> Result<(), u64> {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.quota.events_per_sec).min(self.quota.burst);
        if n > self.quota.burst {
            return Err(0);
        }
        if self.tokens >= n {
            self.tokens -= n;
            return Ok(());
        }
        let missing = n - self.tokens;
        Err(((missing / self.quota.events_per_sec) * 1_000.0).ceil() as u64)
    }
}

/// One shard's keyed registry: `(tenant, key) → sketch`.
type KeyedRegistry<S> = HashMap<(String, String), S>;

/// A shard's restore state: its registry plus the values-done counter
/// as of the checkpoint it was decoded from.
type ShardInit<S> = (KeyedRegistry<S>, u64);

/// One key's live rollup: the partially filled fine window (`None`
/// until the worker first feeds it — a query-side lazy recovery has no
/// factory to mint one) and the tiered store.
struct RollupState<S> {
    window: Option<S>,
    filled: u64,
    store: RollupStore<S>,
}

/// Rollup wiring shared by every shard, resolved at spawn time.
struct RollupRuntime {
    options: RollupOptions,
    metrics: Option<RollupMetrics>,
    /// Last rollup error (best-effort, like checkpoint errors: a failed
    /// spill or cascade never stops ingestion).
    error: Mutex<Option<String>>,
}

/// Open a key's store: recover from its spill directory when one
/// exists, otherwise start empty.
fn open_rollup_store<S>(
    runtime: &RollupRuntime,
    tenant: &str,
    key: &str,
) -> Result<RollupStore<S>, crate::rollup::RollupError>
where
    S: MergeableSketch + SketchSerialize + Clone,
{
    let config = runtime.options.store_config(tenant, key);
    let mut store = match &config.spill_dir {
        Some(dir) if dir.is_dir() => RollupStore::recover(config),
        _ => RollupStore::new(config),
    }?;
    if let Some(m) = &runtime.metrics {
        store.attach_metrics(m.clone());
    }
    Ok(store)
}

/// Feed one admitted batch into a key's rollup, closing (and ingesting)
/// every fine window it fills.
fn feed_rollup<S, F>(
    state: &mut RollupState<S>,
    values: &[f64],
    window_values: u64,
    factory: &F,
) -> Result<(), crate::rollup::RollupError>
where
    S: MergeableSketch + SketchSerialize + Clone,
    F: SketchFactory<Sketch = S>,
{
    let mut idx = 0;
    while idx < values.len() {
        let window = state.window.get_or_insert_with(|| factory.make());
        let room = (window_values - state.filled) as usize;
        let take = room.min(values.len() - idx);
        window.insert_batch(&values[idx..idx + take]);
        state.filled += take as u64;
        idx += take;
        if state.filled == window_values {
            let start = state.store.frontier();
            let full = state.window.take().expect("window just filled");
            state.store.ingest_window(start, full)?;
            state.filled = 0;
        }
    }
    Ok(())
}

/// How the keyed engine checkpoints, resolved at spawn time (the keyed
/// analogue of the plain engine's checkpoint plan — the encode hook is a
/// plain `fn` pointer resolved once rather than re-monomorphised per
/// call site).
struct KeyedCheckpointPlan<S> {
    config: CheckpointConfig,
    num_shards: usize,
    encode: fn(&S) -> Vec<u8>,
}

impl<S> KeyedCheckpointPlan<S> {
    /// Encode shard `i`'s registry under the caller-held lock.
    fn encode_registry(
        &self,
        i: usize,
        registry: &KeyedRegistry<S>,
        values_done: u64,
    ) -> Vec<u8> {
        let entries = registry
            .iter()
            .map(|((tenant, key), sketch)| RegistryEntry {
                tenant: tenant.clone(),
                key: key.clone(),
                payload: (self.encode)(sketch),
            })
            .collect();
        RegistryCheckpoint {
            shard: i,
            num_shards: self.num_shards,
            values_done,
            entries,
        }
        .encode()
    }
}

/// A shard's per-`(tenant, key)` rollup stores, shared between the
/// worker (window closes) and the query side (range queries).
type SharedRollups<S> = Arc<Mutex<HashMap<(String, String), RollupState<S>>>>;

/// One shard: its queue, its keyed registry (shared with the worker),
/// its values-done counter, the worker handle, and the last
/// checkpoint-write error.
struct KeyedShard<S> {
    queue: Arc<BoundedQueue<KeyedBatch>>,
    registry: Arc<Mutex<KeyedRegistry<S>>>,
    rollup: SharedRollups<S>,
    values_done: Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
    ckpt_error: Arc<Mutex<Option<String>>>,
}

/// Point-in-time operational stats of a [`KeyedEngine`] (what the
/// server's `Stats` op reports).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedEngineStats {
    /// Values accepted by the router (admitted past quota).
    pub events_ingested: u64,
    /// Distinct `(tenant, key)` sketches across all shards.
    pub keys: u64,
    /// Shard worker count.
    pub shards: u64,
    /// Batches rejected by quota, total.
    pub quota_rejected_batches: u64,
    /// Per-tenant rejected batch counts, sorted by tenant.
    pub quota_rejected_by_tenant: Vec<(String, u64)>,
}

/// A multi-tenant keyed sharded ingestion engine: hash-routed per-key
/// sketches behind bounded queues, per-tenant quotas, snapshot queries.
/// See the [module docs](self) for the architecture.
pub struct KeyedEngine<S> {
    shards: Vec<KeyedShard<S>>,
    quotas: Mutex<HashMap<String, TokenBucket>>,
    explicit_quotas: HashMap<String, TenantQuota>,
    default_quota: Option<TenantQuota>,
    rejected: Mutex<HashMap<String, u64>>,
    rejected_total: AtomicU64,
    events: AtomicU64,
    metrics: Option<KeyedEngineMetrics>,
    plan: Option<Arc<KeyedCheckpointPlan<S>>>,
    rollup: Option<Arc<RollupRuntime>>,
}

impl<S: MergeableSketch + SketchSerialize + Clone + Send + 'static> KeyedEngine<S> {
    /// Spawn `config.shards` workers, each owning an empty keyed
    /// registry. `factory` mints one sketch per new `(tenant, key)` pair
    /// — every call must produce the same initial state (the
    /// [`SketchFactory`] contract).
    pub fn spawn<F>(config: KeyedEngineConfig, factory: F) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        Self::spawn_impl(config, factory, Vec::new(), None, None, None)
    }

    /// [`spawn`](Self::spawn) with engine metrics registered under
    /// `prefix` in `registry` (see [`KeyedEngineMetrics`]).
    pub fn spawn_instrumented<F>(
        config: KeyedEngineConfig,
        factory: F,
        registry: &qsketch_core::metrics::MetricsRegistry,
        prefix: &str,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let metrics = KeyedEngineMetrics::register(registry, prefix, config.shards);
        let rollup_metrics = config.rollup.as_ref().map(|r| {
            RollupMetrics::register(registry, &format!("{prefix}.rollup"), r.tiers.len())
        });
        Self::spawn_impl(config, factory, Vec::new(), Some(metrics), None, rollup_metrics)
    }

    fn spawn_impl<F>(
        config: KeyedEngineConfig,
        factory: F,
        preload: Vec<ShardInit<S>>,
        metrics: Option<KeyedEngineMetrics>,
        plan: Option<Arc<KeyedCheckpointPlan<S>>>,
        rollup_metrics: Option<RollupMetrics>,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        if config.shards == 0 {
            return Err(KeyedEngineError::NoShards);
        }
        let capacity = config.queue_capacity.max(1);
        let rollup = config.rollup.clone().map(|options| {
            Arc::new(RollupRuntime {
                options,
                metrics: rollup_metrics,
                error: Mutex::new(None),
            })
        });
        let mut inits: Vec<ShardInit<S>> = preload;
        while inits.len() < config.shards {
            inits.push((HashMap::new(), 0));
        }
        let interval = config
            .checkpoint
            .as_ref()
            .map(|c| c.interval_values)
            .unwrap_or(u64::MAX);
        let shards = inits
            .into_iter()
            .enumerate()
            .map(|(i, (map, done))| {
                let queue = Arc::new(BoundedQueue::<KeyedBatch>::new(capacity));
                let registry = Arc::new(Mutex::new(map));
                let rollup_states = Arc::new(Mutex::new(HashMap::new()));
                let values_done = Arc::new(AtomicU64::new(done));
                let ckpt_error = Arc::new(Mutex::new(None));
                let worker_queue = Arc::clone(&queue);
                let worker_registry = Arc::clone(&registry);
                let worker_rollup_states = Arc::clone(&rollup_states);
                let worker_done = Arc::clone(&values_done);
                let worker_error = Arc::clone(&ckpt_error);
                let worker_metrics = metrics.clone();
                let worker_plan = plan.clone();
                let worker_rollup = rollup.clone();
                let worker_factory = factory.clone();
                let worker = std::thread::Builder::new()
                    .name(format!("qsketch-keyed-{i}"))
                    .spawn(move || {
                        let mut last_ckpt = done;
                        while let Some((batch, depth)) = worker_queue.pop() {
                            let KeyedBatch {
                                tenant,
                                key,
                                values,
                            } = batch;
                            let n = values.len() as u64;
                            let rollup_key = worker_rollup
                                .as_ref()
                                .map(|_| (tenant.clone(), key.clone()));
                            // Insert under the registry lock; encode a
                            // due checkpoint under the same lock (a
                            // consistent cut) but write it outside, so
                            // queries never wait on the filesystem.
                            let mut ckpt_bytes: Option<Vec<u8>> = None;
                            {
                                let mut registry =
                                    worker_registry.lock().expect("keyed registry poisoned");
                                registry
                                    .entry((tenant, key))
                                    .or_insert_with(|| worker_factory.make())
                                    .insert_batch(&values);
                                let total = worker_done.fetch_add(n, Ordering::Relaxed) + n;
                                if let Some(plan) = &worker_plan {
                                    if total - last_ckpt >= interval {
                                        ckpt_bytes =
                                            Some(plan.encode_registry(i, &registry, total));
                                        last_ckpt = total;
                                    }
                                }
                            }
                            // Feed the key's rollup under its own lock
                            // (never nested with the registry lock).
                            if let (Some(rt), Some((tenant, key))) =
                                (&worker_rollup, rollup_key)
                            {
                                let mut states = worker_rollup_states
                                    .lock()
                                    .expect("rollup states poisoned");
                                let result = match states.entry((tenant, key)) {
                                    std::collections::hash_map::Entry::Occupied(e) => {
                                        Ok(e.into_mut())
                                    }
                                    std::collections::hash_map::Entry::Vacant(e) => {
                                        open_rollup_store(rt, &e.key().0, &e.key().1).map(
                                            |store| {
                                                e.insert(RollupState {
                                                    window: None,
                                                    filled: 0,
                                                    store,
                                                })
                                            },
                                        )
                                    }
                                }
                                .and_then(|state| {
                                    feed_rollup(
                                        state,
                                        &values,
                                        rt.options.window_values,
                                        &worker_factory,
                                    )
                                });
                                if let Err(e) = result {
                                    *rt.error.lock().expect("rollup error poisoned") =
                                        Some(e.to_string());
                                }
                            }
                            if let (Some(bytes), Some(plan)) = (&ckpt_bytes, &worker_plan) {
                                let start = Instant::now();
                                let result =
                                    write_atomic(&plan.config.registry_path(i), bytes);
                                if let Err(e) = result {
                                    *worker_error.lock().expect("ckpt error poisoned") =
                                        Some(e.to_string());
                                } else if let Some(m) = &worker_metrics {
                                    m.engine.checkpoints.inc();
                                    m.engine
                                        .checkpoint_ns
                                        .record(start.elapsed().as_nanos() as u64);
                                    m.engine.checkpoint_bytes.record(bytes.len() as u64);
                                }
                            }
                            if let Some(m) = &worker_metrics {
                                m.engine.shard_events.record_many(i, n);
                                m.engine.queue_depth[i].set(depth as u64);
                            }
                            worker_queue.mark_done();
                        }
                    })
                    .expect("spawn keyed shard worker");
                KeyedShard {
                    queue,
                    registry,
                    rollup: rollup_states,
                    values_done,
                    worker: Some(worker),
                    ckpt_error,
                }
            })
            .collect();
        Ok(Self {
            shards,
            quotas: Mutex::new(HashMap::new()),
            explicit_quotas: config.quotas.iter().cloned().collect(),
            default_quota: config.default_quota,
            rejected: Mutex::new(HashMap::new()),
            rejected_total: AtomicU64::new(0),
            events: AtomicU64::new(0),
            metrics,
            plan,
            rollup,
        })
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Values admitted past quota so far (enqueued or inserted).
    pub fn events_ingested(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Check and charge `tenant`'s quota for `n` values.
    fn check_quota(&self, tenant: &str, n: u64) -> Result<(), KeyedEngineError> {
        let quota = match self.explicit_quotas.get(tenant) {
            Some(q) => *q,
            None => match self.default_quota {
                Some(q) => q,
                None => return Ok(()),
            },
        };
        let now = Instant::now();
        let mut buckets = self.quotas.lock().expect("quota table poisoned");
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(quota, now));
        match bucket.try_take(n as f64, now) {
            Ok(()) => Ok(()),
            Err(retry_after_ms) => {
                drop(buckets);
                self.rejected_total.fetch_add(1, Ordering::Relaxed);
                *self
                    .rejected
                    .lock()
                    .expect("rejection table poisoned")
                    .entry(tenant.to_string())
                    .or_insert(0) += 1;
                if let Some(m) = &self.metrics {
                    m.quota_rejected.inc();
                }
                Err(KeyedEngineError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    retry_after_ms,
                })
            }
        }
    }

    /// Ingest a batch of values for one `(tenant, key)` pair.
    ///
    /// Callable from any thread (`&self`). The batch is charged against
    /// the tenant's quota **before** touching the queues: an over-quota
    /// batch is rejected whole with a retry hint and consumes no shared
    /// capacity. An admitted batch blocks only when its home shard's
    /// queue is full (global backpressure), with the wait recorded in
    /// the `backpressure_wait_ns` histogram.
    ///
    /// Returns the number of values accepted (0 for an empty batch).
    pub fn ingest(
        &self,
        tenant: &str,
        key: &str,
        values: Vec<f64>,
    ) -> Result<u64, KeyedEngineError> {
        let n = values.len() as u64;
        if n == 0 {
            return Ok(0);
        }
        self.check_quota(tenant, n)?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        let (waited_ns, depth) = self.shards[shard].queue.push(KeyedBatch {
            tenant: tenant.to_string(),
            key: key.to_string(),
            values,
        });
        self.events.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.engine.events.add(n);
            m.engine.batches.inc();
            m.engine.queue_depth[shard].set(depth as u64);
            if waited_ns > 0 {
                m.engine.backpressure_wait_ns.record(waited_ns);
            }
        }
        Ok(n)
    }

    /// Block until every enqueued batch has been fully inserted.
    pub fn drain(&self) {
        for shard in &self.shards {
            shard.queue.wait_drained();
        }
    }

    /// Point-in-time clone of one key's sketch (`None` if the pair has
    /// never been ingested). Touches exactly one shard's registry lock.
    pub fn snapshot(&self, tenant: &str, key: &str) -> Option<S> {
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        self.shards[shard]
            .registry
            .lock()
            .expect("keyed registry poisoned")
            .get(&(tenant.to_string(), key.to_string()))
            .cloned()
    }

    /// Estimate the `q`-quantile of one key's stream.
    pub fn quantile(&self, tenant: &str, key: &str, q: f64) -> Result<f64, KeyedEngineError> {
        let snap = self
            .snapshot(tenant, key)
            .ok_or_else(|| KeyedEngineError::UnknownKey {
                tenant: tenant.to_string(),
                key: key.to_string(),
            })?;
        snap.query(q)
            .map_err(|e| KeyedEngineError::Sketch(SketchError::Query(e)))
    }

    /// Merge a snapshot of **every key of `tenant` whose key starts with
    /// `prefix`** (empty prefix = all of the tenant's keys) through a
    /// binary merge tree. `Ok(None)` when no key matches. The fold runs
    /// on clones, so ingestion never blocks on it; its latency lands in
    /// the `merge_ns` histogram when instrumented.
    pub fn merged_prefix(
        &self,
        tenant: &str,
        prefix: &str,
    ) -> Result<Option<S>, KeyedEngineError> {
        let start = Instant::now();
        let mut snapshots = Vec::new();
        for shard in &self.shards {
            let registry = shard.registry.lock().expect("keyed registry poisoned");
            for ((t, k), sketch) in registry.iter() {
                if t == tenant && k.starts_with(prefix) {
                    snapshots.push(sketch.clone());
                }
            }
        }
        let merged = merge_tree(snapshots)
            .map_err(|e| KeyedEngineError::Sketch(SketchError::Merge(e)))?;
        if let Some(m) = &self.metrics {
            m.engine.merge_ns.record(start.elapsed().as_nanos() as u64);
        }
        Ok(merged)
    }

    /// Range-query one key's rollup store over `[t0, t1)` in the
    /// store's time units (fine slot `i` covers the key's values
    /// `[i·window_values, (i+1)·window_values)` in ingest order, at
    /// slot starts `i × tiers[0].width`).
    ///
    /// Point-in-time like [`snapshot`](Self::snapshot): only windows
    /// already closed *and processed by the shard worker* are visible —
    /// call [`drain`](Self::drain) first for a barrier. When the key
    /// has never been touched by this process but has a spill
    /// directory, the store is lazily recovered from disk, so a fresh
    /// process answers range queries for keys it never ingested.
    ///
    /// Fails with [`KeyedEngineError::RollupDisabled`] when the engine
    /// was spawned without [`RollupOptions`], and with
    /// [`KeyedEngineError::UnknownKey`] when the key has no rollup
    /// state in memory or on disk.
    pub fn range_query(
        &self,
        tenant: &str,
        key: &str,
        t0: u64,
        t1: u64,
    ) -> Result<RangeAnswer<S>, KeyedEngineError> {
        let (states, entry) = self.rollup_state_for(tenant, key)?;
        states[&entry]
            .store
            .range_query(t0, t1)
            .map_err(|e| KeyedEngineError::Rollup(e.to_string()))
    }

    /// Lock the owning shard's rollup map, lazily recovering the key's
    /// store from its spill directory when the key is cold. Shared by
    /// [`range_query`](Self::range_query) and
    /// [`range_query_quantiles`](Self::range_query_quantiles).
    #[allow(clippy::type_complexity)]
    fn rollup_state_for(
        &self,
        tenant: &str,
        key: &str,
    ) -> Result<
        (
            std::sync::MutexGuard<'_, HashMap<(String, String), RollupState<S>>>,
            (String, String),
        ),
        KeyedEngineError,
    > {
        let rt = self
            .rollup
            .as_ref()
            .ok_or(KeyedEngineError::RollupDisabled)?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        let mut states = self.shards[shard]
            .rollup
            .lock()
            .expect("rollup states poisoned");
        let entry = (tenant.to_string(), key.to_string());
        if !states.contains_key(&entry) {
            let config = rt.options.store_config(tenant, key);
            let on_disk = config.spill_dir.as_ref().is_some_and(|d| d.is_dir());
            if !on_disk {
                return Err(KeyedEngineError::UnknownKey {
                    tenant: tenant.to_string(),
                    key: key.to_string(),
                });
            }
            let store = open_rollup_store(rt, tenant, key)
                .map_err(|e| KeyedEngineError::Rollup(e.to_string()))?;
            states.insert(
                entry.clone(),
                RollupState {
                    window: None,
                    filled: 0,
                    store,
                },
            );
        }
        Ok((states, entry))
    }

    /// The rollup ingest frontier of one key (exclusive end of its
    /// cascaded windows, in store time units), `None` when the key has
    /// no in-memory rollup state.
    pub fn rollup_frontier(&self, tenant: &str, key: &str) -> Option<u64> {
        self.rollup.as_ref()?;
        let shard = shard_for(hash_pair(tenant, key), self.shards.len());
        self.shards[shard]
            .rollup
            .lock()
            .expect("rollup states poisoned")
            .get(&(tenant.to_string(), key.to_string()))
            .map(|s| s.store.frontier())
    }

    /// Last rollup error (`None` = healthy or rollups disabled).
    /// Rollups are best-effort: a failed spill or cascade never stops
    /// ingestion, it lands here instead.
    pub fn rollup_error(&self) -> Option<String> {
        self.rollup
            .as_ref()
            .and_then(|rt| rt.error.lock().expect("rollup error poisoned").clone())
    }

    /// Every key currently registered for `tenant`, sorted.
    pub fn keys(&self, tenant: &str) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let registry = shard.registry.lock().expect("keyed registry poisoned");
            out.extend(
                registry
                    .keys()
                    .filter(|(t, _)| t == tenant)
                    .map(|(_, k)| k.clone()),
            );
        }
        out.sort();
        out
    }

    /// Operational stats (the server's `Stats` op). Registry sizes are
    /// read behind the shard locks; counts are point-in-time.
    pub fn stats(&self) -> KeyedEngineStats {
        let keys = self
            .shards
            .iter()
            .map(|s| s.registry.lock().expect("keyed registry poisoned").len() as u64)
            .sum();
        if let Some(m) = &self.metrics {
            m.keys.set(keys);
        }
        let mut by_tenant: Vec<(String, u64)> = self
            .rejected
            .lock()
            .expect("rejection table poisoned")
            .iter()
            .map(|(t, n)| (t.clone(), *n))
            .collect();
        by_tenant.sort();
        KeyedEngineStats {
            events_ingested: self.events_ingested(),
            keys,
            shards: self.shards.len() as u64,
            quota_rejected_batches: self.rejected_total.load(Ordering::Relaxed),
            quota_rejected_by_tenant: by_tenant,
        }
    }

    /// Last checkpoint-write error per shard (`None` = healthy);
    /// checkpointing is best-effort and never stops ingestion.
    pub fn checkpoint_errors(&self) -> Vec<Option<String>> {
        self.shards
            .iter()
            .map(|s| s.ckpt_error.lock().expect("ckpt error poisoned").clone())
            .collect()
    }

    /// Drain, close the queues, and join the workers (graceful
    /// shutdown). Call [`checkpoint_now`](Self::checkpoint_now) first
    /// for a durable final cut.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

impl<S: MergeableSketch + SketchSerialize + Clone + Send + 'static> KeyedEngine<S> {
    /// [`spawn`](Self::spawn) with checkpointing resolved from
    /// `config.checkpoint`: workers write their registry every
    /// `interval_values` inserted values, and
    /// [`checkpoint_now`](Self::checkpoint_now) /
    /// [`recover`](Self::recover) become available. Fails with
    /// [`KeyedEngineError::CheckpointingDisabled`] if the config has no
    /// checkpoint section.
    pub fn spawn_with_checkpoints<F>(
        config: KeyedEngineConfig,
        factory: F,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        Self::spawn_with_checkpoints_impl(config, factory, None, None)
    }

    /// [`spawn_with_checkpoints`](Self::spawn_with_checkpoints) plus
    /// engine metrics under `prefix` in `registry`.
    pub fn spawn_with_checkpoints_instrumented<F>(
        config: KeyedEngineConfig,
        factory: F,
        registry: &qsketch_core::metrics::MetricsRegistry,
        prefix: &str,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let metrics = KeyedEngineMetrics::register(registry, prefix, config.shards);
        let rollup_metrics = config.rollup.as_ref().map(|r| {
            RollupMetrics::register(registry, &format!("{prefix}.rollup"), r.tiers.len())
        });
        Self::spawn_with_checkpoints_impl(config, factory, Some(metrics), rollup_metrics)
    }

    fn spawn_with_checkpoints_impl<F>(
        config: KeyedEngineConfig,
        factory: F,
        metrics: Option<KeyedEngineMetrics>,
        rollup_metrics: Option<RollupMetrics>,
    ) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let plan = Self::make_plan(&config)?;
        Self::spawn_impl(config, factory, Vec::new(), metrics, Some(plan), rollup_metrics)
    }

    /// Write every shard's registry checkpoint **now**, synchronously,
    /// from the calling thread: drain first (so the cut covers every
    /// acknowledged batch), then encode each registry under its lock and
    /// write atomically. This is the durable-cut primitive behind the
    /// server's `Checkpoint` op and its graceful shutdown.
    pub fn checkpoint_now(&self) -> Result<(), KeyedEngineError> {
        let plan = self
            .plan
            .as_ref()
            .ok_or(KeyedEngineError::CheckpointingDisabled)?;
        self.drain();
        for (i, shard) in self.shards.iter().enumerate() {
            let bytes = {
                let registry = shard.registry.lock().expect("keyed registry poisoned");
                plan.encode_registry(i, &registry, shard.values_done.load(Ordering::Relaxed))
            };
            write_atomic(&plan.config.registry_path(i), &bytes)
                .map_err(|e| KeyedEngineError::Io(e.to_string()))?;
            if let Some(m) = &self.metrics {
                m.engine.checkpoints.inc();
                m.engine.checkpoint_bytes.record(bytes.len() as u64);
            }
        }
        Ok(())
    }

    /// Rebuild an engine from the registry checkpoints in
    /// `config.checkpoint.dir`. Shards without a file start empty.
    /// State is restored **as of the checkpoint** (there is no stream to
    /// replay); every restored sketch answers queries bit-identically to
    /// the instant the checkpoint was cut, because the wire payloads
    /// carry full state (including the randomized sketches' coin-flipper
    /// state).
    ///
    /// Fails with [`KeyedEngineError::TopologyMismatch`] if a checkpoint
    /// was taken under a different shard count or holds a key that does
    /// not hash to its shard (hash routing is part of the persisted
    /// contract), and with [`KeyedEngineError::Sketch`] on a corrupt
    /// file.
    pub fn recover<F>(config: KeyedEngineConfig, factory: F) -> Result<Self, KeyedEngineError>
    where
        F: SketchFactory<Sketch = S> + Clone + Send + 'static,
    {
        let plan = Self::make_plan(&config)?;
        let mut preload = Vec::with_capacity(config.shards);
        for i in 0..config.shards {
            match read_registry(&plan.config, i).map_err(|e| KeyedEngineError::Io(e.to_string()))?
            {
                Some(decoded) => {
                    let envelope =
                        decoded.map_err(|e| KeyedEngineError::Sketch(SketchError::Decode(e)))?;
                    if envelope.num_shards != config.shards {
                        return Err(KeyedEngineError::TopologyMismatch(format!(
                            "registry checkpoint for shard {i} was taken with {} shards, \
                             recovering with {}",
                            envelope.num_shards, config.shards,
                        )));
                    }
                    let mut map = HashMap::with_capacity(envelope.entries.len());
                    for entry in &envelope.entries {
                        let home = shard_for(hash_pair(&entry.tenant, &entry.key), config.shards);
                        if home != i {
                            return Err(KeyedEngineError::TopologyMismatch(format!(
                                "key ({}, {}) in shard {i}'s checkpoint hashes to shard {home}",
                                entry.tenant, entry.key,
                            )));
                        }
                        let sketch = S::decode(&entry.payload)
                            .map_err(|e| KeyedEngineError::Sketch(SketchError::Decode(e)))?;
                        map.insert((entry.tenant.clone(), entry.key.clone()), sketch);
                    }
                    preload.push((map, envelope.values_done));
                }
                None => preload.push((HashMap::new(), 0)),
            }
        }
        Self::spawn_impl(config, factory, preload, None, Some(plan), None)
    }

    fn make_plan(
        config: &KeyedEngineConfig,
    ) -> Result<Arc<KeyedCheckpointPlan<S>>, KeyedEngineError> {
        let ckpt = config
            .checkpoint
            .clone()
            .ok_or(KeyedEngineError::CheckpointingDisabled)?;
        std::fs::create_dir_all(&ckpt.dir).map_err(|e| KeyedEngineError::Io(e.to_string()))?;
        if config.shards == 0 {
            return Err(KeyedEngineError::NoShards);
        }
        Ok(Arc::new(KeyedCheckpointPlan {
            num_shards: config.shards,
            encode: S::encode,
            config: ckpt,
        }))
    }
}

impl<S> KeyedEngine<S>
where
    S: MergeableSketch
        + SketchSerialize
        + qsketch_core::flatwire::SketchView
        + Clone
        + Send
        + 'static,
{
    /// Range-query one key's rollup store for quantile values only,
    /// letting warm (spilled) single-slot ranges be answered straight
    /// from slot bytes with no sketch rehydration — see
    /// [`RollupStore::range_query_quantiles`]. Cold keys with a spill
    /// directory are lazily recovered exactly as
    /// [`range_query`](Self::range_query) does; the recovered store's
    /// spilled slots then serve view queries without decoding.
    pub fn range_query_quantiles(
        &self,
        tenant: &str,
        key: &str,
        t0: u64,
        t1: u64,
        qs: &[f64],
    ) -> Result<RangeQuantiles, KeyedEngineError> {
        let (states, entry) = self.rollup_state_for(tenant, key)?;
        states[&entry]
            .store
            .range_query_quantiles(t0, t1, qs)
            .map_err(|e| match e {
                crate::rollup::RollupError::Query(q) => {
                    KeyedEngineError::Sketch(SketchError::Query(q))
                }
                other => KeyedEngineError::Rollup(other.to_string()),
            })
    }
}

impl<S> Drop for KeyedEngine<S> {
    fn drop(&mut self) {
        // Everything already enqueued is still inserted before the
        // workers see the close; `finish` is the explicit form.
        for shard in &self.shards {
            shard.queue.close();
        }
        for shard in &mut self.shards {
            if let Some(worker) = shard.worker.take() {
                let _ = worker.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::metrics::MetricsRegistry;
    use qsketch_core::QuantileSketch;
    use qsketch_ddsketch::DdSketch;
    use qsketch_kll::KllSketch;

    fn dds() -> impl Fn() -> DdSketch + Clone + Send {
        || DdSketch::unbounded(0.01)
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qsketch-keyed-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn per_key_streams_stay_separate() {
        let engine = KeyedEngine::spawn(KeyedEngineConfig::new(3), dds()).unwrap();
        for i in 1..=2_000u64 {
            engine.ingest("acme", "fast", vec![10.0 + (i % 5) as f64]).unwrap();
            engine.ingest("acme", "slow", vec![1_000.0 + (i % 7) as f64]).unwrap();
            engine.ingest("globex", "fast", vec![50.0]).unwrap();
        }
        engine.drain();
        assert_eq!(engine.events_ingested(), 6_000);
        let fast = engine.quantile("acme", "fast", 0.5).unwrap();
        let slow = engine.quantile("acme", "slow", 0.5).unwrap();
        assert!(fast < 20.0, "fast p50 {fast}");
        assert!(slow > 900.0, "slow p50 {slow}");
        // Same key name under another tenant is a different stream.
        let other = engine.quantile("globex", "fast", 0.5).unwrap();
        assert!((other - 50.0).abs() / 50.0 <= 0.01, "globex fast p50 {other}");
        assert_eq!(
            engine.keys("acme"),
            vec!["fast".to_string(), "slow".to_string()]
        );
        engine.finish();
    }

    #[test]
    fn unknown_key_is_a_typed_error() {
        let engine = KeyedEngine::spawn(KeyedEngineConfig::new(1), dds()).unwrap();
        let err = engine.quantile("nobody", "nothing", 0.5).unwrap_err();
        assert!(matches!(err, KeyedEngineError::UnknownKey { .. }));
        assert!(err.to_string().contains("nobody"));
    }

    #[test]
    fn merged_prefix_folds_matching_keys() {
        let engine = KeyedEngine::spawn(KeyedEngineConfig::new(4), dds()).unwrap();
        for i in 1..=500u64 {
            engine.ingest("t", "api.a", vec![i as f64]).unwrap();
            engine.ingest("t", "api.b", vec![i as f64 + 500.0]).unwrap();
            engine.ingest("t", "db.c", vec![1e6]).unwrap();
            engine.ingest("other", "api.z", vec![1e6]).unwrap();
        }
        engine.drain();
        let api = engine.merged_prefix("t", "api.").unwrap().unwrap();
        assert_eq!(api.count(), 1_000);
        let p99 = api.query(0.99).unwrap();
        assert!(p99 < 1_100.0, "api p99 {p99} should exclude db.c and other tenant");
        assert!(engine.merged_prefix("t", "nope.").unwrap().is_none());
        engine.finish();
    }

    #[test]
    fn quota_rejects_noisy_tenant_not_quiet_one() {
        let engine = KeyedEngine::spawn_instrumented(
            KeyedEngineConfig::new(2)
                .with_tenant_quota("noisy", TenantQuota::per_sec(100.0).with_burst(100.0)),
            dds(),
            &MetricsRegistry::new(),
            "keyed",
        )
        .unwrap();
        // The noisy tenant burns its burst, then gets rejected.
        let mut rejected = 0;
        for _ in 0..100 {
            match engine.ingest("noisy", "k", vec![1.0; 10]) {
                Ok(_) => {}
                Err(KeyedEngineError::QuotaExceeded {
                    tenant,
                    retry_after_ms,
                }) => {
                    assert_eq!(tenant, "noisy");
                    assert!(retry_after_ms > 0);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(rejected >= 80, "rejected {rejected}/100");
        // The quiet tenant is untouched.
        for _ in 0..100 {
            engine.ingest("quiet", "k", vec![1.0; 10]).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.quota_rejected_batches, rejected);
        assert_eq!(stats.quota_rejected_by_tenant.len(), 1);
        assert_eq!(stats.quota_rejected_by_tenant[0].0, "noisy");
        engine.finish();
    }

    #[test]
    fn oversized_batch_can_never_pass_and_says_so() {
        let engine = KeyedEngine::spawn(
            KeyedEngineConfig::new(1)
                .with_default_quota(TenantQuota::per_sec(10.0).with_burst(10.0)),
            dds(),
        )
        .unwrap();
        let err = engine.ingest("t", "k", vec![1.0; 1_000]).unwrap_err();
        assert_eq!(
            err,
            KeyedEngineError::QuotaExceeded {
                tenant: "t".into(),
                retry_after_ms: 0
            }
        );
        engine.finish();
    }

    #[test]
    fn checkpoint_now_then_recover_is_bit_identical() {
        let dir = ckpt_dir("recover");
        let factory = || KllSketch::with_seed(200, 0xC0FFEE);
        let config = KeyedEngineConfig::new(3)
            .with_checkpoint(CheckpointConfig::new(&dir, u64::MAX));
        let engine = KeyedEngine::spawn_with_checkpoints(config.clone(), factory).unwrap();
        for i in 0..10_000u64 {
            let key = format!("k{}", i % 7);
            let x = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
            engine.ingest("acme", &key, vec![x + 1e-9]).unwrap();
        }
        engine.checkpoint_now().unwrap();
        let mut expected = Vec::new();
        for k in 0..7 {
            let snap = engine.snapshot("acme", &format!("k{k}")).unwrap();
            expected.push(
                [0.01, 0.5, 0.99, 1.0]
                    .map(|q| snap.query(q).unwrap().to_bits()),
            );
        }
        engine.finish();

        let recovered = KeyedEngine::<KllSketch>::recover(config, factory).unwrap();
        for (k, want) in expected.iter().enumerate() {
            let snap = recovered.snapshot("acme", &format!("k{k}")).unwrap();
            let got = [0.01, 0.5, 0.99, 1.0].map(|q| snap.query(q).unwrap().to_bits());
            assert_eq!(&got, want, "key k{k}");
        }
        recovered.finish();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn periodic_checkpoints_are_written_by_workers() {
        let dir = ckpt_dir("periodic");
        let config = KeyedEngineConfig::new(2)
            .with_checkpoint(CheckpointConfig::new(&dir, 500));
        let engine =
            KeyedEngine::spawn_with_checkpoints(config.clone(), || {
                KllSketch::with_seed(200, 1)
            })
            .unwrap();
        for i in 0..4_000u64 {
            engine
                .ingest("t", &format!("k{}", i % 4), vec![i as f64 + 1.0])
                .unwrap();
        }
        engine.drain();
        assert!(engine.checkpoint_errors().iter().all(Option::is_none));
        // Both shards crossed the 500-value interval.
        for i in 0..2 {
            let ckpt = read_registry(&CheckpointConfig::new(&dir, 500), i)
                .unwrap()
                .unwrap_or_else(|| panic!("missing registry-{i}.ckpt"))
                .unwrap();
            assert_eq!(ckpt.num_shards, 2);
            assert!(ckpt.values_done >= 500);
        }
        engine.finish();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_wrong_topology() {
        let dir = ckpt_dir("topology");
        let config = KeyedEngineConfig::new(2)
            .with_checkpoint(CheckpointConfig::new(&dir, u64::MAX));
        let engine =
            KeyedEngine::spawn_with_checkpoints(config, || KllSketch::with_seed(200, 1)).unwrap();
        engine.ingest("t", "k", vec![1.0, 2.0, 3.0]).unwrap();
        engine.checkpoint_now().unwrap();
        engine.finish();
        let bad = KeyedEngineConfig::new(3)
            .with_checkpoint(CheckpointConfig::new(&dir, u64::MAX));
        let err = KeyedEngine::<KllSketch>::recover(bad, || KllSketch::with_seed(200, 1))
            .err()
            .expect("3-shard recovery must fail");
        assert!(matches!(err, KeyedEngineError::TopologyMismatch(_)), "{err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointing_disabled_is_a_typed_error() {
        let engine = KeyedEngine::<KllSketch>::spawn(KeyedEngineConfig::new(1), || {
            KllSketch::with_seed(200, 1)
        })
        .unwrap();
        assert_eq!(
            engine.checkpoint_now().unwrap_err(),
            KeyedEngineError::CheckpointingDisabled
        );
        engine.finish();
    }

    fn window_tiers() -> Vec<crate::rollup::TierSpec> {
        use crate::rollup::TierSpec;
        vec![
            TierSpec { width: 1, keep: 8 },
            TierSpec { width: 4, keep: 8 },
            TierSpec { width: 16, keep: 8 },
        ]
    }

    #[test]
    fn rollup_windows_cascade_and_answer_range_queries() {
        let config = KeyedEngineConfig::new(2)
            .with_rollup(RollupOptions::new(100, window_tiers()));
        let engine = KeyedEngine::spawn(config, dds()).unwrap();
        // 32 full windows of 100 values, split across ragged batches,
        // plus 50 trailing values that never close a window.
        for i in 0..(3_250 / 13) {
            engine
                .ingest("acme", "lat", (0..13).map(|j| (i * 13 + j) as f64 + 1.0).collect())
                .unwrap();
        }
        engine.ingest("acme", "lat", vec![1.0; 3_250 - 13 * (3_250 / 13)]).unwrap();
        engine.drain();
        assert_eq!(engine.rollup_error(), None);
        assert_eq!(engine.rollup_frontier("acme", "lat"), Some(32));
        let all = engine.range_query("acme", "lat", 0, 32).unwrap();
        assert_eq!(all.sketch.unwrap().count(), 3_200, "partial window excluded");
        // 32 aligned windows decompose into 2 tier-2 slots.
        assert_eq!(all.merged_slots, 2);
        // [20, 32) decomposes into 3 tier-1 slots (tier 0 only retains
        // the newest 8 windows, but tier 1 still covers this range).
        let mid = engine.range_query("acme", "lat", 20, 32).unwrap();
        assert_eq!(mid.sketch.unwrap().count(), 1_200);
        assert_eq!(mid.merged_slots, 3);
        engine.finish();
    }

    #[test]
    fn rollup_spills_per_key_and_recovers_in_a_fresh_process() {
        let root = ckpt_dir("rollup-spill");
        let options = RollupOptions::new(50, window_tiers())
            .with_spill_root(&root)
            .with_hot_slots(2);
        let config = KeyedEngineConfig::new(2).with_rollup(options.clone());
        let engine = KeyedEngine::spawn(config, dds()).unwrap();
        for i in 0..800u64 {
            engine.ingest("acme", "a/b c", vec![i as f64 + 1.0]).unwrap();
            engine.ingest("globex", "k", vec![2.0 * i as f64 + 1.0]).unwrap();
        }
        engine.drain();
        assert_eq!(engine.rollup_error(), None);
        let want = engine.range_query("acme", "a/b c", 0, 16).unwrap();
        let want_bits = [0.1, 0.5, 0.9]
            .map(|q| want.sketch.as_ref().unwrap().query(q).unwrap().to_bits());
        engine.finish();
        // The per-key dir is operator-readable and filesystem-safe.
        let dirs: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(dirs.len(), 2);
        assert!(dirs.iter().any(|d| d.ends_with("-acme-a_b_c")), "{dirs:?}");

        // A fresh engine that never ingested the key lazily recovers
        // its store from disk on the first range query.
        let fresh = KeyedEngine::spawn(
            KeyedEngineConfig::new(2).with_rollup(options),
            dds(),
        )
        .unwrap();
        let got = fresh.range_query("acme", "a/b c", 0, 16).unwrap();
        assert_eq!(got.parts, want.parts);
        let got_bits = [0.1, 0.5, 0.9]
            .map(|q| got.sketch.as_ref().unwrap().query(q).unwrap().to_bits());
        assert_eq!(got_bits, want_bits, "recovered answers must be bit-identical");
        // A key with no state anywhere is still UnknownKey.
        assert!(matches!(
            fresh.range_query("acme", "nope", 0, 16),
            Err(KeyedEngineError::UnknownKey { .. })
        ));
        fresh.finish();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn range_query_without_rollup_is_a_typed_error() {
        let engine = KeyedEngine::spawn(KeyedEngineConfig::new(1), dds()).unwrap();
        assert!(matches!(
            engine.range_query("t", "k", 0, 10),
            Err(KeyedEngineError::RollupDisabled)
        ));
        assert_eq!(engine.rollup_frontier("t", "k"), None);
        engine.finish();
    }

    #[test]
    fn multi_producer_ingest_from_many_threads() {
        let engine = Arc::new(
            KeyedEngine::spawn(KeyedEngineConfig::new(2), dds()).unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..4 {
            let e = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    e.ingest(&format!("tenant-{t}"), "k", vec![i as f64 + 1.0])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.drain();
        assert_eq!(engine.events_ingested(), 4_000);
        let stats = engine.stats();
        assert_eq!(stats.keys, 4);
        assert_eq!(stats.quota_rejected_batches, 0);
    }
}

//! Per-shard checkpoint files for the sharded ingestion engine.
//!
//! A checkpoint is one file per shard (`shard-<i>.ckpt` inside a
//! configurable directory), written atomically (tmp file + rename) by the
//! shard's own worker thread every
//! [`interval_values`](CheckpointConfig::interval_values) inserted
//! values. The file is a small envelope around the sketch's own
//! [`SketchSerialize`] payload:
//!
//! ```text
//! magic 0xC5 | version | shard | num_shards | batch_size | values_done | payload
//! ```
//!
//! `shard`/`num_shards`/`batch_size` pin the engine topology: recovery
//! refuses a checkpoint taken under a different shard count or batch
//! size, because the router's round-robin batching is what makes each
//! shard's value subsequence deterministic — and that determinism is the
//! whole recovery contract. `values_done` is how many values the shard
//! had inserted when the checkpoint was cut; on recovery the engine skips
//! exactly that many values destined for the shard while the caller
//! replays the input stream from the start (see
//! [`ShardedEngine::recover`](crate::engine::ShardedEngine::recover)).
//!
//! Like every wire format in the suite, decoding rejects corrupt,
//! truncated, or foreign payloads with a typed
//! [`DecodeError`] — never a panic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};

/// Magic byte of a shard checkpoint file.
pub const CHECKPOINT_MAGIC: u8 = 0xC5;
const VERSION: u8 = 1;
/// Upper bound accepted for an embedded sketch payload (64 MiB — far
/// above any real sketch, small enough to bound hostile allocations).
const MAX_PAYLOAD: u64 = 64 << 20;

/// Where and how often the engine checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `shard-<i>.ckpt` files (created on spawn).
    pub dir: PathBuf,
    /// Checkpoint every this many values inserted *per shard*. Measured
    /// in values, not wall time, so checkpoint points are deterministic
    /// for a given input — which keeps recovery testable.
    pub interval_values: u64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `interval_values` values per shard
    /// (min 1).
    pub fn new(dir: impl Into<PathBuf>, interval_values: u64) -> Self {
        Self {
            dir: dir.into(),
            interval_values: interval_values.max(1),
        }
    }

    /// The checkpoint file path for shard `i`.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("shard-{i}.ckpt"))
    }
}

/// One decoded shard checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// Which shard this checkpoint belongs to.
    pub shard: usize,
    /// Shard count of the engine that wrote it.
    pub num_shards: usize,
    /// Router batch size of the engine that wrote it.
    pub batch_size: usize,
    /// Values the shard had inserted when the checkpoint was cut.
    pub values_done: u64,
    /// The sketch's serialized payload ([`SketchSerialize::encode`]).
    pub payload: Vec<u8>,
}

impl ShardCheckpoint {
    /// Serialise the checkpoint envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(CHECKPOINT_MAGIC, VERSION);
        w.varint(self.shard as u64);
        w.varint(self.num_shards as u64);
        w.varint(self.batch_size as u64);
        w.u64(self.values_done);
        w.bytes(&self.payload);
        w.finish()
    }

    /// Decode a checkpoint envelope, validating magic/version/bounds.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(bytes, CHECKPOINT_MAGIC, VERSION)?;
        let shard = r.varint()? as usize;
        let num_shards = r.varint()? as usize;
        let batch_size = r.varint()? as usize;
        if num_shards == 0 || shard >= num_shards {
            return Err(DecodeError::Corrupt(format!(
                "shard {shard} outside topology of {num_shards}"
            )));
        }
        if batch_size == 0 {
            return Err(DecodeError::Corrupt("zero batch size".into()));
        }
        let values_done = r.u64()?;
        let payload = r.byte_vec(MAX_PAYLOAD)?;
        r.expect_exhausted()?;
        Ok(Self {
            shard,
            num_shards,
            batch_size,
            values_done,
            payload,
        })
    }

    /// Decode the embedded sketch.
    pub fn sketch<S: SketchSerialize>(&self) -> Result<S, DecodeError> {
        S::decode(&self.payload)
    }
}

/// Magic byte of a keyed-registry checkpoint file (`registry-<i>.ckpt`).
pub const REGISTRY_MAGIC: u8 = 0xC6;
const REGISTRY_VERSION: u8 = 1;
/// Bound on tenant / metric-key byte lengths inside a registry
/// checkpoint (matches the server protocol's identifier cap).
const MAX_IDENT: u64 = 4096;
/// Bound on entries per registry checkpoint shard.
const MAX_ENTRIES: u64 = 1 << 22;

/// One serialized `(tenant, key)` sketch inside a registry checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Tenant the sketch belongs to.
    pub tenant: String,
    /// Metric key within the tenant.
    pub key: String,
    /// The sketch's [`SketchSerialize`] payload.
    pub payload: Vec<u8>,
}

/// A whole keyed shard registry as one checkpoint file: every
/// `(tenant, key)` sketch the shard owns, plus the topology pin.
///
/// ```text
/// magic 0xC6 | version | shard | num_shards | values_done |
///   n | n × (tenant | key | payload)
/// ```
///
/// Unlike [`ShardCheckpoint`] there is no replay-skip contract: the
/// keyed engine serves a network ingest stream that cannot be replayed
/// by the caller, so recovery restores the registry *as of the
/// checkpoint* — the durability boundary is the last checkpoint, which
/// is why the server offers a synchronous checkpoint op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryCheckpoint {
    /// Which shard this registry belongs to.
    pub shard: usize,
    /// Shard count of the engine that wrote it (hash routing pins each
    /// key to `shard_for(hash, num_shards)`, so recovery must keep it).
    pub num_shards: usize,
    /// Values the shard had inserted when the checkpoint was cut.
    pub values_done: u64,
    /// Every keyed sketch of the shard, in unspecified order.
    pub entries: Vec<RegistryEntry>,
}

impl RegistryCheckpoint {
    /// Serialise the registry envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(REGISTRY_MAGIC, REGISTRY_VERSION);
        w.varint(self.shard as u64);
        w.varint(self.num_shards as u64);
        w.u64(self.values_done);
        w.varint(self.entries.len() as u64);
        for e in &self.entries {
            w.bytes(e.tenant.as_bytes());
            w.bytes(e.key.as_bytes());
            w.bytes(&e.payload);
        }
        w.finish()
    }

    /// Decode a registry envelope, validating magic/version/bounds.
    /// Corrupt, truncated, or foreign input yields a typed
    /// [`DecodeError`] — never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(bytes, REGISTRY_MAGIC, REGISTRY_VERSION)?;
        let shard = r.varint()? as usize;
        let num_shards = r.varint()? as usize;
        if num_shards == 0 || shard >= num_shards {
            return Err(DecodeError::Corrupt(format!(
                "shard {shard} outside topology of {num_shards}"
            )));
        }
        let values_done = r.u64()?;
        let n = r.varint()?;
        if n > MAX_ENTRIES {
            return Err(DecodeError::Corrupt(format!(
                "declared {n} registry entries exceeds limit {MAX_ENTRIES}"
            )));
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let tenant = String::from_utf8(r.byte_vec(MAX_IDENT)?)
                .map_err(|_| DecodeError::Corrupt("tenant is not UTF-8".into()))?;
            let key = String::from_utf8(r.byte_vec(MAX_IDENT)?)
                .map_err(|_| DecodeError::Corrupt("key is not UTF-8".into()))?;
            let payload = r.byte_vec(MAX_PAYLOAD)?;
            entries.push(RegistryEntry {
                tenant,
                key,
                payload,
            });
        }
        r.expect_exhausted()?;
        Ok(Self {
            shard,
            num_shards,
            values_done,
            entries,
        })
    }
}

impl CheckpointConfig {
    /// The keyed-registry checkpoint file path for shard `i`.
    pub fn registry_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("registry-{i}.ckpt"))
    }
}

/// Read and decode the registry checkpoint for shard `i`, if one exists
/// (`Ok(None)` when absent; IO errors and decode errors stay distinct).
pub fn read_registry(
    config: &CheckpointConfig,
    i: usize,
) -> io::Result<Option<Result<RegistryCheckpoint, DecodeError>>> {
    let path = config.registry_path(i);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(RegistryCheckpoint::decode(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Write `bytes` to `path` atomically: write + flush a sibling tmp file,
/// then rename over the target, so a crash mid-write never leaves a
/// half-written checkpoint where a reader could find it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        use io::Write as _;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Read and decode the checkpoint for shard `i`, if one exists.
/// `Ok(None)` when the file is absent (a shard that never reached its
/// first checkpoint interval); IO errors and decode errors are distinct.
pub fn read_shard(
    config: &CheckpointConfig,
    i: usize,
) -> io::Result<Option<Result<ShardCheckpoint, DecodeError>>> {
    let path = config.shard_path(i);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(ShardCheckpoint::decode(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardCheckpoint {
        ShardCheckpoint {
            shard: 2,
            num_shards: 4,
            batch_size: 256,
            values_done: 123_456,
            payload: vec![0xD0, 1, 7, 7, 7],
        }
    }

    #[test]
    fn envelope_round_trips() {
        let ckpt = sample();
        assert_eq!(ShardCheckpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    #[test]
    fn rejects_corruption_without_panicking() {
        let bytes = sample().encode();
        // Truncations at every length.
        for cut in 0..bytes.len() {
            assert!(ShardCheckpoint::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = 0xA1;
        assert!(matches!(
            ShardCheckpoint::decode(&wrong),
            Err(DecodeError::WrongMagic { .. })
        ));
        // Future version.
        let mut future = bytes.clone();
        future[1] = 9;
        assert!(matches!(
            ShardCheckpoint::decode(&future),
            Err(DecodeError::UnsupportedVersion(9))
        ));
        // Shard outside topology.
        let broken = ShardCheckpoint {
            shard: 9,
            ..sample()
        };
        assert!(ShardCheckpoint::decode(&broken.encode()).is_err());
    }

    fn registry_sample() -> RegistryCheckpoint {
        RegistryCheckpoint {
            shard: 1,
            num_shards: 4,
            values_done: 9_999,
            entries: vec![
                RegistryEntry {
                    tenant: "acme".into(),
                    key: "checkout.latency".into(),
                    payload: vec![0xD0, 1, 2, 3],
                },
                RegistryEntry {
                    tenant: "globex".into(),
                    key: "api.p99".into(),
                    payload: vec![0xDD, 1],
                },
            ],
        }
    }

    #[test]
    fn registry_envelope_round_trips() {
        let ckpt = registry_sample();
        assert_eq!(RegistryCheckpoint::decode(&ckpt.encode()).unwrap(), ckpt);
        // Empty registry is valid too (a shard that owns no keys yet).
        let empty = RegistryCheckpoint {
            entries: Vec::new(),
            ..registry_sample()
        };
        assert_eq!(RegistryCheckpoint::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn registry_rejects_corruption_without_panicking() {
        let bytes = registry_sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                RegistryCheckpoint::decode(&bytes[..cut]).is_err(),
                "cut={cut}"
            );
        }
        let mut wrong = bytes.clone();
        wrong[0] = 0xC5; // a shard checkpoint is not a registry checkpoint
        assert!(matches!(
            RegistryCheckpoint::decode(&wrong),
            Err(DecodeError::WrongMagic { .. })
        ));
        let mut future = bytes.clone();
        future[1] = 9;
        assert!(matches!(
            RegistryCheckpoint::decode(&future),
            Err(DecodeError::UnsupportedVersion(9))
        ));
        let broken = RegistryCheckpoint {
            shard: 7,
            ..registry_sample()
        };
        assert!(RegistryCheckpoint::decode(&broken.encode()).is_err());
        // Non-UTF-8 tenant bytes: flip a tenant byte to 0xFF in place.
        let mut enc = registry_sample().encode();
        let pos = enc
            .windows(4)
            .position(|w| w == b"acme")
            .expect("tenant bytes present");
        enc[pos] = 0xFF;
        assert!(matches!(
            RegistryCheckpoint::decode(&enc),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn registry_read_absent_is_none() {
        let dir = std::env::temp_dir().join(format!("qsketch-reg-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let config = CheckpointConfig::new(&dir, 1_000);
        assert!(read_registry(&config, 0).unwrap().is_none());
        let ckpt = registry_sample();
        write_atomic(&config.registry_path(1), &ckpt.encode()).unwrap();
        assert_eq!(read_registry(&config, 1).unwrap().unwrap().unwrap(), ckpt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("qsketch-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let config = CheckpointConfig::new(&dir, 1_000);
        let ckpt = sample();
        write_atomic(&config.shard_path(2), &ckpt.encode()).unwrap();
        let back = read_shard(&config, 2).unwrap().unwrap().unwrap();
        assert_eq!(back, ckpt);
        // Absent file is None, not an error.
        assert!(read_shard(&config, 3).unwrap().is_none());
        // No tmp residue.
        assert!(!config.shard_path(2).with_extension("ckpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Per-shard checkpoint files for the sharded ingestion engine.
//!
//! A checkpoint is one file per shard (`shard-<i>.ckpt` inside a
//! configurable directory), written atomically (tmp file + rename) by the
//! shard's own worker thread every
//! [`interval_values`](CheckpointConfig::interval_values) inserted
//! values. The file is a small envelope around the sketch's own
//! [`SketchSerialize`] payload:
//!
//! ```text
//! magic 0xC5 | version | shard | num_shards | batch_size | values_done | payload
//! ```
//!
//! `shard`/`num_shards`/`batch_size` pin the engine topology: recovery
//! refuses a checkpoint taken under a different shard count or batch
//! size, because the router's round-robin batching is what makes each
//! shard's value subsequence deterministic — and that determinism is the
//! whole recovery contract. `values_done` is how many values the shard
//! had inserted when the checkpoint was cut; on recovery the engine skips
//! exactly that many values destined for the shard while the caller
//! replays the input stream from the start (see
//! [`ShardedEngineBuilder::recover`](crate::builder::ShardedEngineBuilder::recover)).
//!
//! Like every wire format in the suite, decoding rejects corrupt,
//! truncated, or foreign payloads with a typed
//! [`DecodeError`] — never a panic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
use qsketch_core::flatwire::SketchView;
use qsketch_core::{QuantileSketch, SketchError};

/// Magic byte of a shard checkpoint file.
pub const CHECKPOINT_MAGIC: u8 = 0xC5;
const VERSION: u8 = 1;
/// Upper bound accepted for an embedded sketch payload (64 MiB — far
/// above any real sketch, small enough to bound hostile allocations).
const MAX_PAYLOAD: u64 = 64 << 20;

/// Where and how often the engine checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding `shard-<i>.ckpt` files (created on spawn).
    pub dir: PathBuf,
    /// Checkpoint every this many values inserted *per shard*. Measured
    /// in values, not wall time, so checkpoint points are deterministic
    /// for a given input — which keeps recovery testable.
    pub interval_values: u64,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `interval_values` values per shard
    /// (min 1).
    pub fn new(dir: impl Into<PathBuf>, interval_values: u64) -> Self {
        Self {
            dir: dir.into(),
            interval_values: interval_values.max(1),
        }
    }

    /// The checkpoint file path for shard `i`.
    pub fn shard_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("shard-{i}.ckpt"))
    }
}

/// One decoded shard checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCheckpoint {
    /// Which shard this checkpoint belongs to.
    pub shard: usize,
    /// Shard count of the engine that wrote it.
    pub num_shards: usize,
    /// Router batch size of the engine that wrote it.
    pub batch_size: usize,
    /// Values the shard had inserted when the checkpoint was cut.
    pub values_done: u64,
    /// The sketch's serialized payload ([`SketchSerialize::encode`]).
    pub payload: Vec<u8>,
}

impl ShardCheckpoint {
    /// Serialise the checkpoint envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(CHECKPOINT_MAGIC, VERSION);
        w.varint(self.shard as u64);
        w.varint(self.num_shards as u64);
        w.varint(self.batch_size as u64);
        w.u64(self.values_done);
        w.bytes(&self.payload);
        w.finish()
    }

    /// Decode a checkpoint envelope, validating magic/version/bounds.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(bytes, CHECKPOINT_MAGIC, VERSION)?;
        let shard = r.varint()? as usize;
        let num_shards = r.varint()? as usize;
        let batch_size = r.varint()? as usize;
        if num_shards == 0 || shard >= num_shards {
            return Err(DecodeError::Corrupt(format!(
                "shard {shard} outside topology of {num_shards}"
            )));
        }
        if batch_size == 0 {
            return Err(DecodeError::Corrupt("zero batch size".into()));
        }
        let values_done = r.u64()?;
        let payload = r.byte_vec(MAX_PAYLOAD)?;
        r.expect_exhausted()?;
        Ok(Self {
            shard,
            num_shards,
            batch_size,
            values_done,
            payload,
        })
    }

    /// Decode the embedded sketch.
    pub fn sketch<S: SketchSerialize>(&self) -> Result<S, DecodeError> {
        S::decode(&self.payload)
    }
}

/// Magic byte of a keyed-registry checkpoint file (`registry-<i>.ckpt`).
pub const REGISTRY_MAGIC: u8 = 0xC6;
const REGISTRY_VERSION: u8 = 1;
/// Bound on tenant / metric-key byte lengths inside a registry
/// checkpoint (matches the server protocol's identifier cap).
const MAX_IDENT: u64 = 4096;
/// Bound on entries per registry checkpoint shard.
const MAX_ENTRIES: u64 = 1 << 22;

/// One serialized `(tenant, key)` sketch inside a registry checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Tenant the sketch belongs to.
    pub tenant: String,
    /// Metric key within the tenant.
    pub key: String,
    /// The sketch's [`SketchSerialize`] payload.
    pub payload: Vec<u8>,
}

/// A whole keyed shard registry as one checkpoint file: every
/// `(tenant, key)` sketch the shard owns, plus the topology pin.
///
/// ```text
/// magic 0xC6 | version | shard | num_shards | values_done |
///   n | n × (tenant | key | payload)
/// ```
///
/// Unlike [`ShardCheckpoint`] there is no replay-skip contract: the
/// keyed engine serves a network ingest stream that cannot be replayed
/// by the caller, so recovery restores the registry *as of the
/// checkpoint* — the durability boundary is the last checkpoint, which
/// is why the server offers a synchronous checkpoint op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryCheckpoint {
    /// Which shard this registry belongs to.
    pub shard: usize,
    /// Shard count of the engine that wrote it (hash routing pins each
    /// key to `shard_for(hash, num_shards)`, so recovery must keep it).
    pub num_shards: usize,
    /// Values the shard had inserted when the checkpoint was cut.
    pub values_done: u64,
    /// Every keyed sketch of the shard, in unspecified order.
    pub entries: Vec<RegistryEntry>,
}

impl RegistryCheckpoint {
    /// Serialise the registry envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(REGISTRY_MAGIC, REGISTRY_VERSION);
        w.varint(self.shard as u64);
        w.varint(self.num_shards as u64);
        w.u64(self.values_done);
        w.varint(self.entries.len() as u64);
        for e in &self.entries {
            w.bytes(e.tenant.as_bytes());
            w.bytes(e.key.as_bytes());
            w.bytes(&e.payload);
        }
        w.finish()
    }

    /// Decode a registry envelope, validating magic/version/bounds.
    /// Corrupt, truncated, or foreign input yields a typed
    /// [`DecodeError`] — never a panic.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::with_header(bytes, REGISTRY_MAGIC, REGISTRY_VERSION)?;
        let shard = r.varint()? as usize;
        let num_shards = r.varint()? as usize;
        if num_shards == 0 || shard >= num_shards {
            return Err(DecodeError::Corrupt(format!(
                "shard {shard} outside topology of {num_shards}"
            )));
        }
        let values_done = r.u64()?;
        let n = r.varint()?;
        if n > MAX_ENTRIES {
            return Err(DecodeError::Corrupt(format!(
                "declared {n} registry entries exceeds limit {MAX_ENTRIES}"
            )));
        }
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let tenant = String::from_utf8(r.byte_vec(MAX_IDENT)?)
                .map_err(|_| DecodeError::Corrupt("tenant is not UTF-8".into()))?;
            let key = String::from_utf8(r.byte_vec(MAX_IDENT)?)
                .map_err(|_| DecodeError::Corrupt("key is not UTF-8".into()))?;
            let payload = r.byte_vec(MAX_PAYLOAD)?;
            entries.push(RegistryEntry {
                tenant,
                key,
                payload,
            });
        }
        r.expect_exhausted()?;
        Ok(Self {
            shard,
            num_shards,
            values_done,
            entries,
        })
    }
}

impl CheckpointConfig {
    /// The keyed-registry checkpoint file path for shard `i`.
    pub fn registry_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("registry-{i}.ckpt"))
    }
}

/// Read and decode the registry checkpoint for shard `i`, if one exists
/// (`Ok(None)` when absent; IO errors and decode errors stay distinct).
pub fn read_registry(
    config: &CheckpointConfig,
    i: usize,
) -> io::Result<Option<Result<RegistryCheckpoint, DecodeError>>> {
    let path = config.registry_path(i);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(RegistryCheckpoint::decode(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Write `bytes` to `path` atomically: write + flush a sibling tmp file,
/// then rename over the target, so a crash mid-write never leaves a
/// half-written checkpoint where a reader could find it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("ckpt.tmp");
    {
        use io::Write as _;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Read and decode the checkpoint for shard `i`, if one exists.
/// `Ok(None)` when the file is absent (a shard that never reached its
/// first checkpoint interval); IO errors and decode errors are distinct.
pub fn read_shard(
    config: &CheckpointConfig,
    i: usize,
) -> io::Result<Option<Result<ShardCheckpoint, DecodeError>>> {
    let path = config.shard_path(i);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(ShardCheckpoint::decode(&bytes))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Error from lazily recovering checkpoint state.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoveryError {
    /// Reading a checkpoint file failed.
    Io(io::Error),
    /// A checkpoint envelope or sketch payload failed to decode.
    Decode(DecodeError),
    /// A query against checkpoint bytes failed (bad quantile, empty
    /// sketch, or corrupt payload discovered mid-walk).
    Query(SketchError),
    /// The checkpoint was taken under a different topology.
    TopologyMismatch(String),
    /// The requested shard or `(tenant, key)` has no checkpoint state.
    Missing(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "checkpoint read failed: {e}"),
            RecoveryError::Decode(e) => write!(f, "checkpoint failed to decode: {e}"),
            RecoveryError::Query(e) => write!(f, "query over checkpoint bytes failed: {e}"),
            RecoveryError::TopologyMismatch(why) => write!(f, "topology mismatch: {why}"),
            RecoveryError::Missing(what) => write!(f, "no checkpoint state for {what}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Io(e) => Some(e),
            RecoveryError::Decode(e) => Some(e),
            RecoveryError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<DecodeError> for RecoveryError {
    fn from(e: DecodeError) -> Self {
        RecoveryError::Decode(e)
    }
}

/// A sketch recovered lazily: held as serialized bytes (queries run over
/// the payload via [`SketchView`]) until the first mutation forces a
/// decode into a live sketch.
///
/// This is the state machine behind [`LazyEngineRecovery`] and
/// [`LazyRegistryRecovery`]. The two states are observable through
/// [`is_live`](Self::is_live) so tests and metrics can assert that a
/// query-only workload never rebuilt anything.
#[derive(Debug, Clone)]
pub enum LazySketch<S> {
    /// Still serialized; queries are evaluated over these bytes.
    Bytes(Vec<u8>),
    /// Decoded (the first ingest, merge, or explicit
    /// [`rebuild`](Self::rebuild) landed here).
    Live(S),
}

impl<S: SketchSerialize + SketchView> LazySketch<S> {
    /// Wrap a serialized payload without decoding it.
    pub fn from_bytes(payload: Vec<u8>) -> Self {
        LazySketch::Bytes(payload)
    }

    /// Whether the sketch has been decoded into live state.
    pub fn is_live(&self) -> bool {
        matches!(self, LazySketch::Live(_))
    }

    /// Quantile estimate: over bytes when still serialized (zero decode,
    /// zero allocation for the flatwire sketches), on the live sketch
    /// otherwise. Bit-identical either way — that is the [`SketchView`]
    /// contract.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError>
    where
        S: QuantileSketch,
    {
        match self {
            LazySketch::Bytes(payload) => S::quantile_from_bytes(payload, q),
            LazySketch::Live(s) => s.query(q).map_err(SketchError::from),
        }
    }

    /// Number of values the sketch has absorbed.
    pub fn count(&self) -> Result<u64, DecodeError>
    where
        S: QuantileSketch,
    {
        match self {
            LazySketch::Bytes(payload) => S::count_from_bytes(payload),
            LazySketch::Live(s) => Ok(s.count()),
        }
    }

    /// Decode into live state if still serialized, returning the live
    /// sketch. Idempotent; this is the "first ingest" transition.
    pub fn rebuild(&mut self) -> Result<&mut S, DecodeError> {
        if let LazySketch::Bytes(payload) = self {
            let live = S::decode(payload)?;
            *self = LazySketch::Live(live);
        }
        match self {
            LazySketch::Live(s) => Ok(s),
            LazySketch::Bytes(_) => unreachable!("rebuild just installed Live"),
        }
    }

    /// Insert one value, rebuilding first if needed.
    pub fn insert(&mut self, value: f64) -> Result<(), DecodeError>
    where
        S: QuantileSketch,
    {
        self.rebuild()?.insert(value);
        Ok(())
    }
}

/// Lazily-decoded recovery of the sharded engine's `shard-<i>.ckpt`
/// files: envelopes are decoded eagerly (they are a few bytes and pin
/// the topology), but each shard's sketch payload stays serialized until
/// that shard first ingests. Per-shard quantile and count queries are
/// served straight from the checkpoint bytes.
///
/// A *global* quantile over all shards inherently requires merging the
/// shard sketches, which requires decoding them — use
/// [`rebuild_all`](Self::rebuild_all) for that transition. The lazy win
/// is for recovery paths that only need per-shard inspection (progress
/// reporting, spot queries, deciding whether to resume at all) before
/// committing to a full rebuild.
pub struct LazyEngineRecovery<S> {
    shards: Vec<Option<(u64, LazySketch<S>)>>,
    num_shards: usize,
    batch_size: usize,
}

impl<S: SketchSerialize + SketchView + QuantileSketch>
    LazyEngineRecovery<S>
{
    /// Read every `shard-<i>.ckpt` under `config.dir`, decoding only the
    /// envelopes. Missing files are shards that never checkpointed
    /// (valid — they restart from zero). Fails on a corrupt envelope or
    /// a topology mismatch across files; the sketch payloads are **not**
    /// validated here (a corrupt payload surfaces as a typed error from
    /// the first query or rebuild that touches it).
    pub fn open(config: &CheckpointConfig, num_shards: usize) -> Result<Self, RecoveryError> {
        if num_shards == 0 {
            return Err(RecoveryError::TopologyMismatch("zero shards".into()));
        }
        let mut shards = Vec::with_capacity(num_shards);
        let mut batch_size = None;
        for i in 0..num_shards {
            match read_shard(config, i)? {
                Some(decoded) => {
                    let ckpt = decoded?;
                    if ckpt.num_shards != num_shards {
                        return Err(RecoveryError::TopologyMismatch(format!(
                            "shard {i} checkpoint was taken with {} shards, opening with \
                             {num_shards}",
                            ckpt.num_shards
                        )));
                    }
                    if let Some(b) = batch_size {
                        if ckpt.batch_size != b {
                            return Err(RecoveryError::TopologyMismatch(format!(
                                "shard {i} checkpoint batch size {} disagrees with {b}",
                                ckpt.batch_size
                            )));
                        }
                    }
                    batch_size = Some(ckpt.batch_size);
                    shards.push(Some((ckpt.values_done, LazySketch::from_bytes(ckpt.payload))));
                }
                None => shards.push(None),
            }
        }
        Ok(Self {
            shards,
            num_shards,
            batch_size: batch_size.unwrap_or(0),
        })
    }

    /// Shard count this recovery was opened with.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Router batch size pinned by the checkpoints (0 when no shard had
    /// a checkpoint file).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Values shard `i` had inserted at its checkpoint (0 when the shard
    /// never checkpointed).
    pub fn values_done(&self, shard: usize) -> u64 {
        self.shards
            .get(shard)
            .and_then(|s| s.as_ref())
            .map_or(0, |(v, _)| *v)
    }

    /// Per-shard quantile straight from checkpoint bytes (or the live
    /// sketch once the shard has been rebuilt).
    pub fn shard_quantile(&self, shard: usize, q: f64) -> Result<f64, RecoveryError> {
        self.lazy(shard)?.quantile(q).map_err(RecoveryError::Query)
    }

    /// Per-shard value count straight from checkpoint bytes.
    pub fn shard_count(&self, shard: usize) -> Result<u64, RecoveryError> {
        self.lazy(shard)?.count().map_err(RecoveryError::Decode)
    }

    /// Whether shard `i` has been decoded into live state.
    pub fn is_live(&self, shard: usize) -> bool {
        self.shards
            .get(shard)
            .and_then(|s| s.as_ref())
            .is_some_and(|(_, l)| l.is_live())
    }

    /// Mutable access to shard `i`'s sketch, rebuilding it on first use
    /// (the ingest transition).
    pub fn shard_mut(&mut self, shard: usize) -> Result<&mut S, RecoveryError> {
        match self.shards.get_mut(shard).and_then(|s| s.as_mut()) {
            Some((_, lazy)) => lazy.rebuild().map_err(RecoveryError::Decode),
            None => Err(RecoveryError::Missing(format!("shard {shard}"))),
        }
    }

    /// Rebuild every checkpointed shard and return the live sketches in
    /// shard order (`None` for shards that never checkpointed) — the
    /// bridge to a full engine resume or a global merged query.
    pub fn rebuild_all(mut self) -> Result<Vec<Option<S>>, RecoveryError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            match self.shards[i].as_mut() {
                Some((_, lazy)) => {
                    lazy.rebuild().map_err(RecoveryError::Decode)?;
                    match self.shards[i].take() {
                        Some((_, LazySketch::Live(s))) => out.push(Some(s)),
                        _ => unreachable!("rebuild just installed Live"),
                    }
                }
                None => out.push(None),
            }
        }
        Ok(out)
    }

    fn lazy(&self, shard: usize) -> Result<&LazySketch<S>, RecoveryError> {
        match self.shards.get(shard).and_then(|s| s.as_ref()) {
            Some((_, lazy)) => Ok(lazy),
            None => Err(RecoveryError::Missing(format!("shard {shard}"))),
        }
    }
}

/// Lazily-decoded recovery of the keyed engine's `registry-<i>.ckpt`
/// files: every `(tenant, key)` payload stays serialized, and quantile /
/// count queries run straight over the bytes. Only keys that actually
/// receive writes get decoded ([`sketch_mut`](Self::sketch_mut)) — a
/// recovery that only serves reads never rebuilds anything, which is the
/// difference between O(total state) and O(touched keys) restart cost.
pub struct LazyRegistryRecovery<S> {
    entries: std::collections::HashMap<(String, String), LazySketch<S>>,
    values_done: Vec<u64>,
    num_shards: usize,
}

impl<S: SketchSerialize + SketchView + QuantileSketch>
    LazyRegistryRecovery<S>
{
    /// Read every `registry-<i>.ckpt` under `config.dir`, decoding the
    /// envelopes (strings and topology) but none of the sketch payloads.
    /// Missing files are shards that never checkpointed.
    pub fn open(config: &CheckpointConfig, num_shards: usize) -> Result<Self, RecoveryError> {
        if num_shards == 0 {
            return Err(RecoveryError::TopologyMismatch("zero shards".into()));
        }
        let mut entries = std::collections::HashMap::new();
        let mut values_done = vec![0u64; num_shards];
        for (i, done) in values_done.iter_mut().enumerate() {
            if let Some(decoded) = read_registry(config, i)? {
                let ckpt = decoded?;
                if ckpt.num_shards != num_shards {
                    return Err(RecoveryError::TopologyMismatch(format!(
                        "registry checkpoint for shard {i} was taken with {} shards, \
                         opening with {num_shards}",
                        ckpt.num_shards
                    )));
                }
                *done = ckpt.values_done;
                for e in ckpt.entries {
                    entries.insert((e.tenant, e.key), LazySketch::from_bytes(e.payload));
                }
            }
        }
        Ok(Self {
            entries,
            values_done,
            num_shards,
        })
    }

    /// Shard count this recovery was opened with.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Values each shard had inserted at its checkpoint.
    pub fn values_done(&self) -> &[u64] {
        &self.values_done
    }

    /// Number of recovered `(tenant, key)` sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no key was recovered at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many recovered keys have been decoded into live sketches (0
    /// for a query-only workload — the lazy guarantee).
    pub fn live_keys(&self) -> usize {
        self.entries.values().filter(|l| l.is_live()).count()
    }

    /// Quantile for one key straight from its checkpoint bytes.
    pub fn quantile(&self, tenant: &str, key: &str, q: f64) -> Result<f64, RecoveryError> {
        self.entry(tenant, key)?
            .quantile(q)
            .map_err(RecoveryError::Query)
    }

    /// Value count for one key straight from its checkpoint bytes.
    pub fn count(&self, tenant: &str, key: &str) -> Result<u64, RecoveryError> {
        self.entry(tenant, key)?.count().map_err(RecoveryError::Decode)
    }

    /// Keys recovered for `tenant`, in unspecified order.
    pub fn keys(&self, tenant: &str) -> Vec<String> {
        self.entries
            .keys()
            .filter(|(t, _)| t == tenant)
            .map(|(_, k)| k.clone())
            .collect()
    }

    /// Mutable access to one key's sketch, decoding it on first use (the
    /// ingest transition; every other key stays serialized).
    pub fn sketch_mut(&mut self, tenant: &str, key: &str) -> Result<&mut S, RecoveryError> {
        match self
            .entries
            .get_mut(&(tenant.to_string(), key.to_string()))
        {
            Some(lazy) => lazy.rebuild().map_err(RecoveryError::Decode),
            None => Err(RecoveryError::Missing(format!("({tenant}, {key})"))),
        }
    }

    fn entry(&self, tenant: &str, key: &str) -> Result<&LazySketch<S>, RecoveryError> {
        self.entries
            .get(&(tenant.to_string(), key.to_string()))
            .ok_or_else(|| RecoveryError::Missing(format!("({tenant}, {key})")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardCheckpoint {
        ShardCheckpoint {
            shard: 2,
            num_shards: 4,
            batch_size: 256,
            values_done: 123_456,
            payload: vec![0xD0, 1, 7, 7, 7],
        }
    }

    #[test]
    fn envelope_round_trips() {
        let ckpt = sample();
        assert_eq!(ShardCheckpoint::decode(&ckpt.encode()).unwrap(), ckpt);
    }

    #[test]
    fn rejects_corruption_without_panicking() {
        let bytes = sample().encode();
        // Truncations at every length.
        for cut in 0..bytes.len() {
            assert!(ShardCheckpoint::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = 0xA1;
        assert!(matches!(
            ShardCheckpoint::decode(&wrong),
            Err(DecodeError::WrongMagic { .. })
        ));
        // Future version.
        let mut future = bytes.clone();
        future[1] = 9;
        assert!(matches!(
            ShardCheckpoint::decode(&future),
            Err(DecodeError::UnsupportedVersion(9))
        ));
        // Shard outside topology.
        let broken = ShardCheckpoint {
            shard: 9,
            ..sample()
        };
        assert!(ShardCheckpoint::decode(&broken.encode()).is_err());
    }

    fn registry_sample() -> RegistryCheckpoint {
        RegistryCheckpoint {
            shard: 1,
            num_shards: 4,
            values_done: 9_999,
            entries: vec![
                RegistryEntry {
                    tenant: "acme".into(),
                    key: "checkout.latency".into(),
                    payload: vec![0xD0, 1, 2, 3],
                },
                RegistryEntry {
                    tenant: "globex".into(),
                    key: "api.p99".into(),
                    payload: vec![0xDD, 1],
                },
            ],
        }
    }

    #[test]
    fn registry_envelope_round_trips() {
        let ckpt = registry_sample();
        assert_eq!(RegistryCheckpoint::decode(&ckpt.encode()).unwrap(), ckpt);
        // Empty registry is valid too (a shard that owns no keys yet).
        let empty = RegistryCheckpoint {
            entries: Vec::new(),
            ..registry_sample()
        };
        assert_eq!(RegistryCheckpoint::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn registry_rejects_corruption_without_panicking() {
        let bytes = registry_sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                RegistryCheckpoint::decode(&bytes[..cut]).is_err(),
                "cut={cut}"
            );
        }
        let mut wrong = bytes.clone();
        wrong[0] = 0xC5; // a shard checkpoint is not a registry checkpoint
        assert!(matches!(
            RegistryCheckpoint::decode(&wrong),
            Err(DecodeError::WrongMagic { .. })
        ));
        let mut future = bytes.clone();
        future[1] = 9;
        assert!(matches!(
            RegistryCheckpoint::decode(&future),
            Err(DecodeError::UnsupportedVersion(9))
        ));
        let broken = RegistryCheckpoint {
            shard: 7,
            ..registry_sample()
        };
        assert!(RegistryCheckpoint::decode(&broken.encode()).is_err());
        // Non-UTF-8 tenant bytes: flip a tenant byte to 0xFF in place.
        let mut enc = registry_sample().encode();
        let pos = enc
            .windows(4)
            .position(|w| w == b"acme")
            .expect("tenant bytes present");
        enc[pos] = 0xFF;
        assert!(matches!(
            RegistryCheckpoint::decode(&enc),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn registry_read_absent_is_none() {
        let dir = std::env::temp_dir().join(format!("qsketch-reg-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let config = CheckpointConfig::new(&dir, 1_000);
        assert!(read_registry(&config, 0).unwrap().is_none());
        let ckpt = registry_sample();
        write_atomic(&config.registry_path(1), &ckpt.encode()).unwrap();
        assert_eq!(read_registry(&config, 1).unwrap().unwrap().unwrap(), ckpt);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("qsketch-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let config = CheckpointConfig::new(&dir, 1_000);
        let ckpt = sample();
        write_atomic(&config.shard_path(2), &ckpt.encode()).unwrap();
        let back = read_shard(&config, 2).unwrap().unwrap().unwrap();
        assert_eq!(back, ckpt);
        // Absent file is None, not an error.
        assert!(read_shard(&config, 3).unwrap().is_none());
        // No tmp residue.
        assert!(!config.shard_path(2).with_extension("ckpt.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    use qsketch_kll::KllSketch;

    fn kll(seed: u64, n: u64) -> KllSketch {
        let mut s = KllSketch::with_seed(200, seed);
        for i in 0..n {
            s.insert((i as f64) * 0.7 - 100.0);
        }
        s
    }

    fn lazy_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qsketch-lazy-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn lazy_engine_recovery_serves_queries_without_rebuilding() {
        let dir = lazy_dir("engine");
        let config = CheckpointConfig::new(&dir, 1_000);
        let sketches: Vec<KllSketch> = (0..3).map(|i| kll(i, 5_000 + 1_000 * i)).collect();
        for (i, s) in sketches.iter().enumerate() {
            let ckpt = ShardCheckpoint {
                shard: i,
                num_shards: 4, // shard 3 never checkpointed
                batch_size: 128,
                values_done: s.count(),
                payload: s.encode(),
            };
            write_atomic(&config.shard_path(i), &ckpt.encode()).unwrap();
        }

        let rec = LazyEngineRecovery::<KllSketch>::open(&config, 4).unwrap();
        assert_eq!(rec.num_shards(), 4);
        assert_eq!(rec.batch_size(), 128);
        assert_eq!(rec.values_done(3), 0);
        for (i, s) in sketches.iter().enumerate() {
            assert_eq!(rec.values_done(i), s.count());
            assert_eq!(rec.shard_count(i).unwrap(), s.count());
            for q in [0.01, 0.5, 0.99] {
                // Bit-identical to decoding the checkpoint and querying.
                assert_eq!(
                    rec.shard_quantile(i, q).unwrap().to_bits(),
                    s.query(q).unwrap().to_bits(),
                    "shard {i} q={q}"
                );
            }
            // The queries above must not have decoded anything.
            assert!(!rec.is_live(i), "shard {i} rebuilt by a read");
        }
        assert!(matches!(
            rec.shard_quantile(3, 0.5),
            Err(RecoveryError::Missing(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_engine_first_ingest_rebuilds_one_shard() {
        let dir = lazy_dir("ingest");
        let config = CheckpointConfig::new(&dir, 1_000);
        for i in 0..2 {
            let s = kll(i as u64, 2_000);
            let ckpt = ShardCheckpoint {
                shard: i,
                num_shards: 2,
                batch_size: 64,
                values_done: s.count(),
                payload: s.encode(),
            };
            write_atomic(&config.shard_path(i), &ckpt.encode()).unwrap();
        }
        let mut rec = LazyEngineRecovery::<KllSketch>::open(&config, 2).unwrap();
        rec.shard_mut(0).unwrap().insert(1.0);
        assert!(rec.is_live(0));
        assert!(!rec.is_live(1), "untouched shard stayed serialized");
        assert_eq!(rec.shard_count(0).unwrap(), 2_001);

        // Rebuilding everything is the bridge back to a live engine.
        let live = rec.rebuild_all().unwrap();
        assert_eq!(live.len(), 2);
        assert_eq!(live[0].as_ref().unwrap().count(), 2_001);
        assert_eq!(live[1].as_ref().unwrap().count(), 2_000);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_engine_rejects_topology_mismatch() {
        let dir = lazy_dir("topo");
        let config = CheckpointConfig::new(&dir, 1_000);
        let s = kll(9, 1_000);
        let ckpt = ShardCheckpoint {
            shard: 0,
            num_shards: 2,
            batch_size: 64,
            values_done: s.count(),
            payload: s.encode(),
        };
        write_atomic(&config.shard_path(0), &ckpt.encode()).unwrap();
        assert!(matches!(
            LazyEngineRecovery::<KllSketch>::open(&config, 4),
            Err(RecoveryError::TopologyMismatch(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_engine_corrupt_payload_is_a_typed_query_error() {
        let dir = lazy_dir("corrupt");
        let config = CheckpointConfig::new(&dir, 1_000);
        let ckpt = ShardCheckpoint {
            shard: 0,
            num_shards: 1,
            batch_size: 64,
            values_done: 7,
            payload: vec![0xA1, 9, 0xFF], // bad version: decodes as envelope, not as a sketch
        };
        write_atomic(&config.shard_path(0), &ckpt.encode()).unwrap();
        // Opening succeeds: payloads are not validated until touched.
        let mut rec = LazyEngineRecovery::<KllSketch>::open(&config, 1).unwrap();
        assert!(matches!(
            rec.shard_quantile(0, 0.5),
            Err(RecoveryError::Query(_))
        ));
        assert!(matches!(rec.shard_mut(0), Err(RecoveryError::Decode(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_registry_recovery_serves_keys_from_bytes() {
        let dir = lazy_dir("registry");
        let config = CheckpointConfig::new(&dir, 1_000);
        let a = kll(1, 4_000);
        let b = kll(2, 6_000);
        let ckpt = RegistryCheckpoint {
            shard: 0,
            num_shards: 1,
            values_done: a.count() + b.count(),
            entries: vec![
                RegistryEntry {
                    tenant: "acme".into(),
                    key: "checkout.latency".into(),
                    payload: a.encode(),
                },
                RegistryEntry {
                    tenant: "acme".into(),
                    key: "api.p99".into(),
                    payload: b.encode(),
                },
            ],
        };
        write_atomic(&config.registry_path(0), &ckpt.encode()).unwrap();

        let mut rec = LazyRegistryRecovery::<KllSketch>::open(&config, 1).unwrap();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.values_done(), &[10_000]);
        let mut keys = rec.keys("acme");
        keys.sort();
        assert_eq!(keys, vec!["api.p99".to_string(), "checkout.latency".into()]);
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(
                rec.quantile("acme", "checkout.latency", q).unwrap().to_bits(),
                a.query(q).unwrap().to_bits()
            );
            assert_eq!(
                rec.quantile("acme", "api.p99", q).unwrap().to_bits(),
                b.query(q).unwrap().to_bits()
            );
        }
        assert_eq!(rec.count("acme", "api.p99").unwrap(), 6_000);
        // A pure-read recovery decoded nothing.
        assert_eq!(rec.live_keys(), 0);

        // First write to one key rebuilds only that key.
        rec.sketch_mut("acme", "api.p99").unwrap().insert(5.0);
        assert_eq!(rec.live_keys(), 1);
        assert_eq!(rec.count("acme", "api.p99").unwrap(), 6_001);
        assert_eq!(rec.count("acme", "checkout.latency").unwrap(), 4_000);

        assert!(matches!(
            rec.quantile("acme", "nope", 0.5),
            Err(RecoveryError::Missing(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}

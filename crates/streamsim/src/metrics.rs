//! Pipeline-level observability: the windowed-aggregation health metrics
//! an operator of the paper's Flink job would watch, recorded into a
//! [`MetricsRegistry`] from `qsketch_core`.
//!
//! [`PipelineMetrics`] bundles the handles the tumbling-window operator
//! updates as it runs:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `pipeline.events` | counter | events observed (admitted + dropped) |
//! | `pipeline.late_dropped` | counter | events dropped as late (§2.6) |
//! | `pipeline.windows_fired` | counter | windows fired by the watermark |
//! | `pipeline.watermark_us` | gauge | current watermark (µs event time) |
//! | `pipeline.watermark_lag_us` | histogram | ingest time − watermark per event |
//! | `pipeline.emit_latency_us` | histogram | triggering ingest time − window end per fired window |
//!
//! *Watermark lag* is the simulator's analogue of Flink's
//! `currentInputWatermark` lag: how far (µs) each arriving event's
//! ingestion time is ahead of the watermark. *Emit latency* is how long
//! after a window's event-time end the watermark actually fired it —
//! under the paper's ascending watermark this is the delay model's doing;
//! with a configured watermark lag it grows by exactly that lag.
//!
//! Windows force-fired by end-of-stream [`close`] have no triggering
//! event and record no emit latency.
//!
//! [`close`]: crate::window::TumblingWindows::close

use qsketch_core::metrics::{Counter, Gauge, LogHistogram, MetricsRegistry};

/// Metric handles for one windowed pipeline. Cheap to clone; clones share
/// the underlying metrics.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Events observed, admitted or not (`pipeline.events`).
    pub events: Counter,
    /// Late events dropped (`pipeline.late_dropped`).
    pub late_dropped: Counter,
    /// Windows fired by watermark passage (`pipeline.windows_fired`).
    pub windows_fired: Counter,
    /// Current watermark in µs (`pipeline.watermark_us`).
    pub watermark_us: Gauge,
    /// Per-event ingest-time lead over the watermark, µs
    /// (`pipeline.watermark_lag_us`).
    pub watermark_lag_us: LogHistogram,
    /// Per-fired-window lateness of the firing vs. the window's event-time
    /// end, µs (`pipeline.emit_latency_us`).
    pub emit_latency_us: LogHistogram,
}

impl PipelineMetrics {
    /// Register the pipeline metrics under the conventional
    /// `pipeline.*` names.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self::register_prefixed(registry, "pipeline")
    }

    /// Register under a custom prefix (for multiple pipelines sharing a
    /// registry).
    pub fn register_prefixed(registry: &MetricsRegistry, prefix: &str) -> Self {
        let name = |metric: &str| format!("{prefix}.{metric}");
        Self {
            events: registry.counter(&name("events")),
            late_dropped: registry.counter(&name("late_dropped")),
            windows_fired: registry.counter(&name("windows_fired")),
            watermark_us: registry.gauge(&name("watermark_us")),
            watermark_lag_us: registry.histogram(&name("watermark_lag_us")),
            emit_latency_us: registry.histogram(&name("emit_latency_us")),
        }
    }
}

/// Per-partition event counters for a partitioned window operator
/// (`<prefix>.partition.<i>.events`), the skew view §2.4's mergeability
/// argument presumes is balanced.
#[derive(Debug, Clone)]
pub struct PartitionMetrics {
    counters: Vec<Counter>,
}

impl PartitionMetrics {
    /// Register `p` per-partition counters under
    /// `<prefix>.partition.<i>.events`.
    pub fn register(registry: &MetricsRegistry, prefix: &str, p: usize) -> Self {
        let counters = (0..p)
            .map(|i| registry.counter(&format!("{prefix}.partition.{i}.events")))
            .collect();
        Self { counters }
    }

    /// Number of partitions covered.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when registered over zero partitions.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Count one event routed to partition `i`.
    #[inline]
    pub fn record(&self, i: usize) {
        self.counters[i].inc();
    }

    /// Count `n` events routed to partition `i` at once (a worker thread
    /// accounting for a whole drained batch with one atomic add).
    #[inline]
    pub fn record_many(&self, i: usize, n: u64) {
        self.counters[i].add(n);
    }

    /// Current per-partition totals.
    pub fn totals(&self) -> Vec<u64> {
        self.counters.iter().map(Counter::get).collect()
    }
}

/// Metric handles for one sharded ingestion engine
/// ([`crate::engine::ShardedEngine`]). Cheap to clone; clones share the
/// underlying metrics.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `<prefix>.events` | counter | values accepted by the router |
/// | `<prefix>.batches` | counter | batches shipped to shard queues |
/// | `<prefix>.partition.<i>.events` | counter | values a shard worker inserted |
/// | `<prefix>.shard.<i>.queue_depth` | gauge | batches queued for shard `i` |
/// | `<prefix>.backpressure_wait_ns` | histogram | producer blocking time per full-queue send |
/// | `<prefix>.handoff_retries` | counter | failed ring-slot claim attempts (full ring) |
/// | `<prefix>.epochs_published` | counter | shard snapshot epochs published |
/// | `<prefix>.epoch_lag_values` | histogram | values routed but not yet in the loaded snapshot, per query per shard |
/// | `<prefix>.merge_ns` | histogram | shard-snapshot merge-tree latency per query |
/// | `<prefix>.checkpoints` | counter | shard checkpoints written |
/// | `<prefix>.checkpoint_ns` | histogram | encode+write+rename latency per checkpoint |
/// | `<prefix>.checkpoint_bytes` | histogram | checkpoint file size |
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    /// Values accepted by the router (`<prefix>.events`).
    pub events: Counter,
    /// Batches shipped to shard queues (`<prefix>.batches`).
    pub batches: Counter,
    /// Per-shard inserted-event counters
    /// (`<prefix>.partition.<i>.events`).
    pub shard_events: PartitionMetrics,
    /// Per-shard queue depth in batches
    /// (`<prefix>.shard.<i>.queue_depth`).
    pub queue_depth: Vec<Gauge>,
    /// Producer blocking time on a full shard queue, ns
    /// (`<prefix>.backpressure_wait_ns`).
    pub backpressure_wait_ns: LogHistogram,
    /// Failed CAS claim attempts on full handoff rings
    /// (`<prefix>.handoff_retries`).
    pub handoff_retries: Counter,
    /// Snapshot epochs published by shard workers
    /// (`<prefix>.epochs_published`).
    pub epochs_published: Counter,
    /// Per-query, per-shard staleness of the wait-free snapshot, in
    /// values (`<prefix>.epoch_lag_values`).
    pub epoch_lag_values: LogHistogram,
    /// Merge-tree latency of snapshot queries, ns (`<prefix>.merge_ns`).
    pub merge_ns: LogHistogram,
    /// Shard checkpoints successfully written (`<prefix>.checkpoints`).
    pub checkpoints: Counter,
    /// Per-checkpoint write latency, ns (`<prefix>.checkpoint_ns`).
    pub checkpoint_ns: LogHistogram,
    /// Per-checkpoint file size, bytes (`<prefix>.checkpoint_bytes`).
    pub checkpoint_bytes: LogHistogram,
}

impl EngineMetrics {
    /// Register engine metrics for `shards` shard workers under `prefix`.
    pub fn register(registry: &MetricsRegistry, prefix: &str, shards: usize) -> Self {
        let name = |metric: &str| format!("{prefix}.{metric}");
        Self {
            events: registry.counter(&name("events")),
            batches: registry.counter(&name("batches")),
            shard_events: PartitionMetrics::register(registry, prefix, shards),
            queue_depth: (0..shards)
                .map(|i| registry.gauge(&name(&format!("shard.{i}.queue_depth"))))
                .collect(),
            backpressure_wait_ns: registry.histogram(&name("backpressure_wait_ns")),
            handoff_retries: registry.counter(&name("handoff_retries")),
            epochs_published: registry.counter(&name("epochs_published")),
            epoch_lag_values: registry.histogram(&name("epoch_lag_values")),
            merge_ns: registry.histogram(&name("merge_ns")),
            checkpoints: registry.counter(&name("checkpoints")),
            checkpoint_ns: registry.histogram(&name("checkpoint_ns")),
            checkpoint_bytes: registry.histogram(&name("checkpoint_bytes")),
        }
    }

    /// Number of shards covered.
    pub fn num_shards(&self) -> usize {
        self.queue_depth.len()
    }
}

/// Metric handles for one keyed multi-tenant engine
/// ([`crate::keyed_engine::KeyedEngine`]): the full [`EngineMetrics`] set
/// (same names, same meanings) plus the serving-side additions.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `<prefix>.*` | — | everything in [`EngineMetrics`] |
/// | `<prefix>.quota_rejected` | counter | ingest batches rejected by a tenant quota |
/// | `<prefix>.keys` | gauge | distinct `(tenant, key)` sketches (updated on `stats()`) |
#[derive(Debug, Clone)]
pub struct KeyedEngineMetrics {
    /// The shared engine metric set (`<prefix>.events`, queue depths,
    /// backpressure, checkpoints, …).
    pub engine: EngineMetrics,
    /// Batches rejected by a per-tenant quota
    /// (`<prefix>.quota_rejected`).
    pub quota_rejected: Counter,
    /// Distinct `(tenant, key)` sketches across all shards
    /// (`<prefix>.keys`).
    pub keys: Gauge,
}

impl KeyedEngineMetrics {
    /// Register keyed-engine metrics for `shards` workers under `prefix`.
    pub fn register(registry: &MetricsRegistry, prefix: &str, shards: usize) -> Self {
        Self {
            engine: EngineMetrics::register(registry, prefix, shards),
            quota_rejected: registry.counter(&format!("{prefix}.quota_rejected")),
            keys: registry.gauge(&format!("{prefix}.keys")),
        }
    }
}

/// Metric handles for a hierarchical rollup store
/// ([`crate::rollup::RollupStore`]). Cheap to clone; clones share the
/// underlying metrics. When many per-key stores share one handle set
/// (the keyed engine), the counters aggregate across stores and the
/// per-tier gauges show the most recently updated store.
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `<prefix>.windows_ingested` | counter | closed windows entering the fine tier |
/// | `<prefix>.cascades` | counter | coarse slots produced by cascading |
/// | `<prefix>.spills` | counter | slot files written through to disk |
/// | `<prefix>.spill_bytes` | histogram | spilled slot file size |
/// | `<prefix>.aged_out` | counter | slots removed by retention |
/// | `<prefix>.range_queries` | counter | range queries answered |
/// | `<prefix>.range_merged_slots` | histogram | stored sketches merged per range query |
/// | `<prefix>.tier.<i>.slots` | gauge | slots currently stored in tier `i` |
#[derive(Debug, Clone)]
pub struct RollupMetrics {
    /// Closed windows ingested into the fine tier
    /// (`<prefix>.windows_ingested`).
    pub windows_ingested: Counter,
    /// Coarse slots produced by cascading (`<prefix>.cascades`).
    pub cascades: Counter,
    /// Slot files written through to disk (`<prefix>.spills`).
    pub spills: Counter,
    /// Spilled slot file sizes, bytes (`<prefix>.spill_bytes`).
    pub spill_bytes: LogHistogram,
    /// Slots removed by retention (`<prefix>.aged_out`).
    pub aged_out: Counter,
    /// Range queries answered (`<prefix>.range_queries`).
    pub range_queries: Counter,
    /// Stored sketches merged per range query
    /// (`<prefix>.range_merged_slots`).
    pub range_merged_slots: LogHistogram,
    /// Range queries answered straight from spilled slot bytes, with no
    /// sketch rehydration (`<prefix>.range_view_serves`).
    pub range_view_serves: Counter,
    /// Per-tier stored-slot counts (`<prefix>.tier.<i>.slots`).
    pub tier_slots: Vec<Gauge>,
}

impl RollupMetrics {
    /// Register rollup metrics for a `tiers`-level ladder under `prefix`.
    pub fn register(registry: &MetricsRegistry, prefix: &str, tiers: usize) -> Self {
        let name = |metric: &str| format!("{prefix}.{metric}");
        Self {
            windows_ingested: registry.counter(&name("windows_ingested")),
            cascades: registry.counter(&name("cascades")),
            spills: registry.counter(&name("spills")),
            spill_bytes: registry.histogram(&name("spill_bytes")),
            aged_out: registry.counter(&name("aged_out")),
            range_queries: registry.counter(&name("range_queries")),
            range_merged_slots: registry.histogram(&name("range_merged_slots")),
            range_view_serves: registry.counter(&name("range_view_serves")),
            tier_slots: (0..tiers)
                .map(|i| registry.gauge(&name(&format!("tier.{i}.slots"))))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_metrics_register_conventional_names() {
        let r = MetricsRegistry::new();
        let m = PipelineMetrics::register(&r);
        m.events.add(3);
        m.late_dropped.inc();
        m.watermark_us.set(42);
        let snap = r.snapshot();
        assert_eq!(snap.counter("pipeline.events"), Some(3));
        assert_eq!(snap.counter("pipeline.late_dropped"), Some(1));
        assert_eq!(snap.gauge("pipeline.watermark_us"), Some(42));
        assert!(snap.histogram("pipeline.watermark_lag_us").is_some());
        assert!(snap.histogram("pipeline.emit_latency_us").is_some());
    }

    #[test]
    fn prefixed_pipelines_do_not_collide() {
        let r = MetricsRegistry::new();
        let a = PipelineMetrics::register_prefixed(&r, "a");
        let b = PipelineMetrics::register_prefixed(&r, "b");
        a.events.add(1);
        b.events.add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.events"), Some(1));
        assert_eq!(snap.counter("b.events"), Some(2));
    }

    #[test]
    fn partition_metrics_track_per_partition() {
        let r = MetricsRegistry::new();
        let m = PartitionMetrics::register(&r, "pipeline", 3);
        assert_eq!(m.len(), 3);
        for i in 0..7 {
            m.record(i % 3);
        }
        m.record_many(2, 10);
        assert_eq!(m.totals(), vec![3, 2, 12]);
        assert_eq!(r.snapshot().counter("pipeline.partition.0.events"), Some(3));
    }

    #[test]
    fn engine_metrics_register_per_shard_names() {
        let r = MetricsRegistry::new();
        let m = EngineMetrics::register(&r, "engine", 2);
        assert_eq!(m.num_shards(), 2);
        m.events.add(512);
        m.batches.add(2);
        m.shard_events.record_many(0, 256);
        m.shard_events.record_many(1, 256);
        m.queue_depth[1].set(3);
        m.backpressure_wait_ns.record(1_000);
        m.merge_ns.record(5_000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("engine.events"), Some(512));
        assert_eq!(snap.counter("engine.batches"), Some(2));
        assert_eq!(snap.counter("engine.partition.0.events"), Some(256));
        assert_eq!(snap.gauge("engine.shard.1.queue_depth"), Some(3));
        assert_eq!(
            snap.histogram("engine.backpressure_wait_ns").unwrap().count,
            1
        );
        assert_eq!(snap.histogram("engine.merge_ns").unwrap().count, 1);
    }

    #[test]
    fn keyed_engine_metrics_extend_engine_names() {
        let r = MetricsRegistry::new();
        let m = KeyedEngineMetrics::register(&r, "server", 2);
        m.engine.events.add(10);
        m.quota_rejected.inc();
        m.keys.set(7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("server.events"), Some(10));
        assert_eq!(snap.counter("server.quota_rejected"), Some(1));
        assert_eq!(snap.gauge("server.keys"), Some(7));
    }
}

//! Event sources: a value stream paced at a fixed event rate, with a
//! network-delay model attached.

use qsketch_datagen::ValueStream;

use crate::delay::{DelaySampler, NetworkDelay};
use crate::event::Event;

/// Generates events at `events_per_sec`, assigning generated-time
/// timestamps on an exact schedule (event `i` is generated at
/// `i · 10⁶ / rate` µs) and ingestion timestamps through the delay model.
pub struct EventSource {
    values: Box<dyn ValueStream>,
    events_per_sec: u64,
    delays: DelaySampler,
    emitted: u64,
}

impl EventSource {
    /// Create a source.
    pub fn new(
        values: Box<dyn ValueStream>,
        events_per_sec: u64,
        delay: NetworkDelay,
        seed: u64,
    ) -> Self {
        assert!(events_per_sec > 0);
        Self {
            values,
            events_per_sec,
            delays: DelaySampler::new(delay, seed ^ 0xDE1A_F00D),
            emitted: 0,
        }
    }

    /// Number of events generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Generate the next event.
    pub fn next_event(&mut self) -> Event {
        let event_time_us = self.emitted * 1_000_000 / self.events_per_sec;
        self.emitted += 1;
        Event::new(
            self.values.next_value(),
            event_time_us,
            self.delays.sample_us(),
        )
    }

    /// Generate `n` events **in ingestion order** — the order a stream
    /// processor would see them. (Generation order differs once delays are
    /// attached; the sort is a stable simulation of the network.)
    pub fn take_events(&mut self, n: usize) -> Vec<Event> {
        let mut events: Vec<Event> = (0..n).map(|_| self.next_event()).collect();
        events.sort_by_key(|e| e.ingest_time_us);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ramp(f64);
    impl ValueStream for Ramp {
        fn next_value(&mut self) -> f64 {
            self.0 += 1.0;
            self.0
        }
    }

    #[test]
    fn event_times_follow_rate() {
        let mut src = EventSource::new(Box::new(Ramp(0.0)), 1000, NetworkDelay::None, 1);
        let e0 = src.next_event();
        let e1 = src.next_event();
        let e2 = src.next_event();
        assert_eq!(e0.event_time_us, 0);
        assert_eq!(e1.event_time_us, 1_000); // 1 ms apart at 1000 ev/s
        assert_eq!(e2.event_time_us, 2_000);
    }

    #[test]
    fn paper_rate_spacing() {
        let mut src =
            EventSource::new(Box::new(Ramp(0.0)), crate::PAPER_EVENTS_PER_SEC, NetworkDelay::None, 1);
        let e0 = src.next_event();
        let e1 = src.next_event();
        assert_eq!(e1.event_time_us - e0.event_time_us, 20); // 20 µs at 50k/s
    }

    #[test]
    fn no_delay_means_ingestion_order_is_generation_order() {
        let mut src = EventSource::new(Box::new(Ramp(0.0)), 1000, NetworkDelay::None, 1);
        let events = src.take_events(100);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.value, (i + 1) as f64);
        }
    }

    #[test]
    fn delays_reorder_events() {
        let mut src = EventSource::new(
            Box::new(Ramp(0.0)),
            10_000,
            NetworkDelay::ExponentialMs(50.0),
            3,
        );
        let events = src.take_events(10_000);
        // Sorted by ingestion...
        for w in events.windows(2) {
            assert!(w[0].ingest_time_us <= w[1].ingest_time_us);
        }
        // ...but event times are out of order somewhere.
        let out_of_order = events
            .windows(2)
            .any(|w| w[0].event_time_us > w[1].event_time_us);
        assert!(out_of_order, "exponential delays should reorder events");
    }
}

//! Lock-free ingest substrate: CAS-claimed buffer handoff and epoch
//! snapshot publication, in the style of Quancurrent (arXiv:2208.09265).
//!
//! The engines in [`crate::engine`] and [`crate::keyed_engine`] run on
//! two primitives from this module:
//!
//! * [`HandoffRing`] — a bounded multi-producer / single-consumer ring
//!   of pre-filled batches. Producers claim slots with a CAS on the
//!   tail ticket and publish the payload with one release store; the
//!   shard worker (the single consumer) drains claimed slots in FIFO
//!   order. **No mutex is acquired anywhere on the ingest path** —
//!   backpressure when the ring is full is a spin/yield/nap loop, and
//!   every retry is counted so saturation is observable, not silent.
//! * [`EpochCell`] — a single-writer, wait-free-reader publication
//!   slot. The shard worker periodically serializes its sketch into a
//!   [`ShardSnapshot`] and publishes it; queries [`load`](EpochCell::load)
//!   the latest snapshot with three atomic operations and **never block
//!   ingest** (and ingest never blocks them). Snapshots hold serialized
//!   bytes, so queries answer zero-copy through
//!   [`SketchView`] instead of
//!   cloning live shard state.
//!
//! Query results travel as a [`SnapshotHandle`] — the one query surface
//! shared by `ShardedEngine`, `KeyedEngine`, and the server's
//! `ServerCore`.
//!
//! # Memory-ordering argument
//!
//! Every atomic in this module is annotated at its use site; the
//! summary (mirrored in ARCHITECTURE.md):
//!
//! * Ring slot `seq`: `Acquire` loads / `Release` stores form the
//!   publication edge for the slot payload (Vyukov's bounded-queue
//!   protocol). A consumer that observes `seq == pos + 1` sees the
//!   producer's fully written payload; a producer that observes
//!   `seq == pos + capacity` (after wrap) sees the consumer's take.
//! * Ring `tail`: claimed with `AcqRel` CAS — the ticket is a pure
//!   allocation, the payload handoff rides on `seq`.
//! * Ring `head`: single consumer, so a `Relaxed` store suffices for
//!   the counter itself; the payload edge is again `seq`.
//! * `sent_*`/`done_*` counters: `AcqRel`/`Acquire` so that
//!   `wait_drained` observing `done == sent` happens-after every
//!   payload insert that `done` accounts for.
//! * `closed`/`dead` flags: `Release` store / `Acquire` load — the
//!   consumer must re-poll the ring *after* observing `closed` so the
//!   flag cannot outrun in-flight slot publications.
//! * `EpochCell` uses `SeqCst` throughout: reclamation soundness
//!   depends on a total order between a reader's `active` increment and
//!   the writer's `active == 0` quiescence check (see the proof on
//!   [`EpochCell::publish`]). These are per-epoch operations, far off
//!   the per-value hot path, so the fence cost is irrelevant.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use qsketch_core::flatwire::SketchView;
use qsketch_core::sketch::{merge_tree, MergeableSketch, SketchError};
use qsketch_core::SketchSerialize;

/// Default number of inserted values between two epoch snapshot
/// publications by a shard worker. Each publication serializes the
/// shard sketch once; at 8192 values the amortised cost is well under a
/// nanosecond per value for every sketch in the zoo, while queries lag
/// live state by at most one epoch (plus ring depth).
pub const DEFAULT_EPOCH_INTERVAL: u64 = 8192;

/// How long the consumer naps when the ring is empty and no close /
/// publish request is pending. Requests `unpark` the worker, so this
/// bounds only the idle-poll cadence, not request latency.
const CONSUMER_PARK: Duration = Duration::from_millis(1);

/// Producer-side backpressure ladder: spin this many times, then yield,
/// then nap. On the 1-CPU CI container the yield rung is the one doing
/// the work — a spinning producer would starve the consumer it is
/// waiting for.
const PUSH_SPIN_LIMIT: u32 = 64;
const PUSH_YIELD_LIMIT: u32 = 96;
const PUSH_NAP: Duration = Duration::from_micros(50);

fn next_power_of_two(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// One ring slot: a sequence ticket plus an uninitialised payload cell.
/// `seq` is the slot's state machine (Vyukov): `pos` = free for the
/// producer holding ticket `pos`, `pos + 1` = full, awaiting the
/// consumer, `pos + capacity` = consumed, free for the next lap.
struct Slot<T> {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Outcome of a blocking [`HandoffRing::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushReport {
    /// Nanoseconds spent in the backpressure ladder (0 = immediate).
    pub waited_ns: u64,
    /// Failed claim attempts before the slot CAS succeeded.
    pub retries: u64,
    /// Approximate ring depth (batches) right after the push.
    pub depth: usize,
    /// The ring was dead and the batch was dropped (recovery replays it).
    pub dropped: bool,
}

/// Consumer-side outcome of one [`HandoffRing::pop_wait`] round.
pub enum PopState<T> {
    /// A batch, plus the approximate depth after the pop.
    Item(T, usize),
    /// The ring was empty for one park interval (or the worker was
    /// unparked by a request); service pending requests and re-poll.
    Idle,
    /// The ring is closed and fully drained; the worker should exit.
    Closed,
}

/// A bounded MPSC ring: producers claim slots by CAS on a tail ticket,
/// hand off pre-filled batches, and never touch a mutex. The single
/// consumer (the shard worker) drains in ticket order, so per-shard
/// batch order is FIFO — the property the deterministic-replay
/// contract and the recovery skip logic stand on.
///
/// `try_push` / `try_pop` are exposed so interleaving tests can drive
/// the protocol step by step. **`try_pop`/`pop_wait` must only ever be
/// called from one thread at a time** (the consumer); the producer side
/// is safe from any number of threads.
pub struct HandoffRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Capacity as requested by the caller. The slot array is at least
    /// two entries even for a capacity-1 ring, because Vyukov's `seq`
    /// state machine cannot distinguish "full" from "free for the next
    /// lap" when the lap length is 1; the logical bound is enforced by
    /// an explicit `tail - head` check instead.
    logical_cap: usize,
    /// Next producer ticket.
    tail: AtomicUsize,
    /// Next consumer ticket (single consumer).
    head: AtomicUsize,
    closed: AtomicBool,
    /// Fault injection: the worker died. Pushes drop their batch
    /// instead of blocking and `wait_drained` stops waiting — a dead
    /// shard must never deadlock the producer.
    dead: AtomicBool,
    sent_batches: AtomicU64,
    sent_values: AtomicU64,
    done_batches: AtomicU64,
    done_values: AtomicU64,
    /// Dekker flag for the consumer's park: set before the final empty
    /// re-check, cleared on wake. Producers `unpark` only when they see
    /// it, so the steady-state push cost is one relaxed-ish load.
    consumer_parked: AtomicBool,
    /// The consumer registers its `Thread` handle on first `pop_wait`.
    consumer: OnceLock<std::thread::Thread>,
}

// SAFETY: the ring moves `T` values across threads by value (producer
// writes the payload cell, exactly one consumer reads it, guarded by
// the `seq` protocol), which is exactly the `T: Send` contract. No `&T`
// is ever shared.
unsafe impl<T: Send> Send for HandoffRing<T> {}
unsafe impl<T: Send> Sync for HandoffRing<T> {}

impl<T> HandoffRing<T> {
    /// A ring holding up to `capacity` batches (min 1; the backing slot
    /// array is the next power of two, min 2).
    pub fn new(capacity: usize) -> Self {
        let logical_cap = capacity.max(1);
        let cap = next_power_of_two(logical_cap).max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap - 1,
            logical_cap,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            sent_batches: AtomicU64::new(0),
            sent_values: AtomicU64::new(0),
            done_batches: AtomicU64::new(0),
            done_values: AtomicU64::new(0),
            consumer_parked: AtomicBool::new(false),
            consumer: OnceLock::new(),
        }
    }

    /// Batches the ring admits at once (the caller's capacity).
    pub fn capacity(&self) -> usize {
        self.logical_cap
    }

    /// One claim attempt. `Ok(depth)` on success; `Err(item)` hands the
    /// batch back when the ring is full. `weight` is the number of
    /// values the batch carries (for the drain accounting).
    pub fn try_push(&self, item: T, weight: u64) -> Result<usize, T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            // Logical-capacity gate (see `logical_cap`). `head` only
            // ever grows, so a stale load can only make the ring look
            // fuller than it is — a spurious `Err` the blocking `push`
            // retries, never an overrun.
            if pos.wrapping_sub(self.head.load(Ordering::Relaxed)) >= self.logical_cap {
                return Err(item);
            }
            let slot = &self.slots[pos & self.mask];
            // Acquire: pairs with the consumer's Release store of
            // `pos + capacity` — seeing it means the slot's previous
            // payload has been fully moved out.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot free for this ticket: claim it. AcqRel so a won
                // ticket is ordered with other producers' claims;
                // failure reloads the current tail.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // `sent` must be visible before the payload is
                        // consumable, so `done` can never overtake it.
                        self.sent_batches.fetch_add(1, Ordering::AcqRel);
                        self.sent_values.fetch_add(weight, Ordering::AcqRel);
                        // SAFETY: the CAS above made this producer the
                        // unique owner of slot `pos` until the seq
                        // store below publishes it.
                        unsafe { (*slot.value.get()).write(item) };
                        // Release: publishes the payload write to the
                        // consumer's Acquire load of `seq`.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        let depth = pos
                            .wrapping_add(1)
                            .wrapping_sub(self.head.load(Ordering::Relaxed));
                        return Ok(depth.min(self.capacity()));
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // The slot still holds a payload from `capacity`
                // tickets ago: the ring is full.
                return Err(item);
            } else {
                // Another producer claimed this ticket; chase the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Push with blocking backpressure: spin, then yield, then nap until
    /// a slot frees up. Returns how long and how often it waited — a
    /// full ring is a *signal* (recorded in `handoff_retries` /
    /// `backpressure_wait_ns`), not an error. A push to a dead ring
    /// drops the batch (`dropped: true`); the lost values are exactly
    /// what recovery replays.
    pub fn push(&self, item: T, weight: u64) -> PushReport {
        let mut item = item;
        let mut retries = 0u64;
        let mut waited_ns = 0u64;
        let mut rung = 0u32;
        loop {
            // Acquire: pairs with `mark_dead`'s Release so the drop
            // decision happens-after the worker's last insert.
            if self.dead.load(Ordering::Acquire) {
                return PushReport {
                    waited_ns,
                    retries,
                    depth: 0,
                    dropped: true,
                };
            }
            match self.try_push(item, weight) {
                Ok(depth) => {
                    self.wake_consumer();
                    return PushReport {
                        waited_ns,
                        retries,
                        depth,
                        dropped: false,
                    };
                }
                Err(back) => {
                    item = back;
                    retries += 1;
                    let start = Instant::now();
                    if rung < PUSH_SPIN_LIMIT {
                        rung += 1;
                        std::hint::spin_loop();
                    } else if rung < PUSH_YIELD_LIMIT {
                        rung += 1;
                        std::thread::yield_now();
                    } else {
                        // Nobody unparks producers; the timeout bounds
                        // the nap. 50µs keeps worst-case added latency
                        // far below one batch's processing time.
                        std::thread::park_timeout(PUSH_NAP);
                    }
                    waited_ns += start.elapsed().as_nanos() as u64;
                }
            }
        }
    }

    /// One consumer-side take attempt (single consumer only). Returns
    /// the batch and the approximate post-pop depth.
    pub fn try_pop(&self) -> Option<(T, usize)> {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        // Acquire: pairs with the producer's Release publication of the
        // payload.
        let seq = slot.seq.load(Ordering::Acquire);
        if seq as isize - pos.wrapping_add(1) as isize != 0 {
            return None;
        }
        // Single consumer: no contention on head, Relaxed suffices (the
        // payload edge is `seq`).
        self.head.store(pos.wrapping_add(1), Ordering::Relaxed);
        // SAFETY: observing seq == pos + 1 (Acquire) means the producer
        // fully wrote this payload and will not touch the slot again
        // until we free it via the seq store below.
        let item = unsafe { (*slot.value.get()).assume_init_read() };
        // Release: frees the slot for the producer `capacity` tickets
        // later; pairs with try_push's Acquire load.
        slot.seq
            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
        let depth = self
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(pos.wrapping_add(1));
        Some((item, depth.min(self.capacity())))
    }

    /// Consumer-side wait loop: take a batch, report a drained+closed
    /// ring, or park briefly and return [`PopState::Idle`] so the
    /// worker can service publish/checkpoint requests.
    pub fn pop_wait(&self) -> PopState<T> {
        let _ = self.consumer.set(std::thread::current());
        if let Some((item, depth)) = self.try_pop() {
            return PopState::Item(item, depth);
        }
        // Dekker handshake with `wake_consumer`: publish the parked
        // flag, then re-check the ring. SeqCst on both sides means
        // either we see the producer's slot publication here, or the
        // producer sees our flag and unparks us.
        self.consumer_parked.store(true, Ordering::SeqCst);
        if let Some((item, depth)) = self.try_pop() {
            self.consumer_parked.store(false, Ordering::SeqCst);
            return PopState::Item(item, depth);
        }
        // Acquire pairs with `close`'s Release; the re-poll above
        // already covered batches published before the close.
        if self.closed.load(Ordering::Acquire) {
            self.consumer_parked.store(false, Ordering::SeqCst);
            return match self.try_pop() {
                Some((item, depth)) => PopState::Item(item, depth),
                None => PopState::Closed,
            };
        }
        std::thread::park_timeout(CONSUMER_PARK);
        self.consumer_parked.store(false, Ordering::SeqCst);
        PopState::Idle
    }

    fn wake_consumer(&self) {
        // SeqCst: see the handshake note in `pop_wait`.
        if self.consumer_parked.load(Ordering::SeqCst) {
            if let Some(t) = self.consumer.get() {
                t.unpark();
            }
        }
    }

    /// Worker-side acknowledgement that one popped batch (of `weight`
    /// values) is fully inserted into the shard sketch.
    pub fn mark_done(&self, weight: u64) {
        // AcqRel: `wait_drained`'s Acquire load of `done` must
        // happen-after the sketch inserts this done accounts for.
        self.done_values.fetch_add(weight, Ordering::AcqRel);
        self.done_batches.fetch_add(1, Ordering::AcqRel);
    }

    /// Batches handed off so far.
    pub fn sent_batches(&self) -> u64 {
        self.sent_batches.load(Ordering::Acquire)
    }

    /// Values handed off so far.
    pub fn sent_values(&self) -> u64 {
        self.sent_values.load(Ordering::Acquire)
    }

    /// Values fully processed by the consumer so far.
    pub fn done_values(&self) -> u64 {
        self.done_values.load(Ordering::Acquire)
    }

    /// Block until every handed-off batch has been fully processed, or
    /// the worker died (a dead shard will never make more progress).
    pub fn wait_drained(&self) {
        loop {
            if self.dead.load(Ordering::Acquire) {
                return;
            }
            if self.done_batches.load(Ordering::Acquire)
                >= self.sent_batches.load(Ordering::Acquire)
            {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Close the ring: the consumer drains what is buffered and exits.
    pub fn close(&self) {
        // Release pairs with pop_wait's Acquire: a consumer that sees
        // the flag has already re-polled everything pushed before it.
        self.closed.store(true, Ordering::Release);
        if let Some(t) = self.consumer.get() {
            t.unpark();
        }
    }

    /// Worker-side: declare this shard dead (fault injection). Unblocks
    /// producers (their pushes become drops) and `wait_drained`.
    pub fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }

    /// Whether the worker died.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

impl<T> Drop for HandoffRing<T> {
    fn drop(&mut self) {
        // Drop any published-but-unconsumed payloads. `&mut self` means
        // no producer or consumer is live, so plain loads are exact.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut pos = head;
        while pos != tail {
            let slot = &mut self.slots[pos & self.mask];
            if *slot.seq.get_mut() == pos.wrapping_add(1) {
                // SAFETY: seq == pos + 1 marks a fully written,
                // never-consumed payload.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

/// A single-writer publication cell with wait-free readers, used to
/// hand epoch snapshots from a shard worker to query threads.
///
/// [`load`](Self::load) is three atomic operations and never blocks the
/// writer; [`publish`](Self::publish) swaps in a new `Arc` and reclaims
/// superseded values only at an observed quiescent point. The retired
/// list sits behind a mutex, but that mutex is **writer-only** (one
/// shard worker per cell, touched once per epoch) — no reader and no
/// ingest producer ever takes it.
pub struct EpochCell<T> {
    /// Raw pointer from `Arc::into_raw`; the cell owns one strong count
    /// of whatever it currently points at.
    current: AtomicPtr<T>,
    /// Readers inside the load critical section (between the counter
    /// increment and the refcount acquisition).
    active: AtomicUsize,
    epoch: AtomicU64,
    /// Superseded pointers not yet proven unreachable. Writer-only.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: the cell shares `Arc<T>` values across threads; that is
// sound exactly when `Arc<T>: Send + Sync`, i.e. `T: Send + Sync`.
unsafe impl<T: Send + Sync> Send for EpochCell<T> {}
unsafe impl<T: Send + Sync> Sync for EpochCell<T> {}

impl<T> EpochCell<T> {
    /// A cell born holding `initial` at epoch 0, so readers always find
    /// a value (a freshly spawned shard publishes its starting state —
    /// empty or recovered — before the first batch arrives).
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            active: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Wait-free snapshot read: returns the most recently published
    /// value. Never blocks `publish` and is never blocked by it.
    pub fn load(&self) -> Arc<T> {
        // SeqCst on active/current: establishes the total order the
        // reclamation proof in `publish` relies on.
        self.active.fetch_add(1, Ordering::SeqCst);
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from Arc::into_raw. Its strong count
        // cannot reach zero while we sit between the fetch_add above
        // and the fetch_sub below: the writer only drops a retired
        // pointer's count after observing `active == 0`, and ours is
        // non-zero for this whole window (see `publish`). So bumping
        // the count and re-materialising the Arc is sound.
        let arc = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.active.fetch_sub(1, Ordering::SeqCst);
        arc
    }

    /// Publish `next`, retiring the previous value; returns the new
    /// epoch number. Single writer per cell by contract (the shard
    /// worker); concurrent calls are safe but the epoch/value pairing
    /// becomes unspecified.
    ///
    /// Reclamation soundness: superseded pointers are freed only when
    /// the writer observes `active == 0` *after* retiring them. In the
    /// SeqCst total order, a zero read of `active` means every reader
    /// increment before it has a matching decrement before it — so
    /// every reader still inside `load`'s unsafe window started *after*
    /// the zero read, and such a reader's `current.load` is ordered
    /// after this publish's `swap` and returns the new pointer, never a
    /// retired one. Readers that grabbed an old pointer before the
    /// quiescent point already hold their own strong count; dropping
    /// the cell's count cannot free their value.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let fresh = Arc::into_raw(next) as *mut T;
        let old = self.current.swap(fresh, Ordering::SeqCst);
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut retired = self.retired.lock().expect("epoch retire list poisoned");
        retired.push(old);
        if self.active.load(Ordering::SeqCst) == 0 {
            for ptr in retired.drain(..) {
                // SAFETY: quiescent point observed after retirement;
                // see the proof above.
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
        epoch
    }

    /// Number of publishes so far (0 = only the initial value).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        // &mut self: no readers or writers remain.
        let current = *self.current.get_mut();
        // SAFETY: the cell owns one strong count of `current` and of
        // every retired pointer.
        unsafe { drop(Arc::from_raw(current)) };
        for ptr in self.retired.get_mut().expect("epoch retire list poisoned").drain(..) {
            unsafe { drop(Arc::from_raw(ptr)) };
        }
    }
}

/// Scope guard held by a shard worker for its whole run: if the worker
/// *unwinds* (a panic in a sketch insert, checkpoint write, or metrics
/// hook), the ring is marked dead on the way out, so producers drop
/// their batches and `wait_drained` returns instead of blocking forever
/// on a consumer that no longer exists. A normal (`Closed`) exit leaves
/// the ring untouched — this is strictly the panic path.
pub struct DeadOnPanic<T>(pub Arc<HandoffRing<T>>);

impl<T> Drop for DeadOnPanic<T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.mark_dead();
        }
    }
}

/// Publish request/acknowledgement pair: queries that need
/// read-your-writes freshness (`drain`, `checkpoint_now`, the
/// deprecated exact-snapshot shims) bump `req` and wait for the worker
/// to publish and bump `ack` past their ticket. Pure atomics — the
/// waiter spins/yields, the worker never blocks.
#[derive(Default)]
pub struct EpochRequest {
    req: AtomicU64,
    ack: AtomicU64,
}

impl EpochRequest {
    pub fn new() -> Self {
        Self::default()
    }

    /// Caller side: request a fresh publication; returns the ticket to
    /// wait on.
    pub fn request(&self) -> u64 {
        self.req.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Worker side: the latest outstanding ticket, if any work is due.
    pub fn pending(&self) -> Option<u64> {
        let req = self.req.load(Ordering::SeqCst);
        if req > self.ack.load(Ordering::SeqCst) {
            Some(req)
        } else {
            None
        }
    }

    /// Worker side: acknowledge everything up to `ticket` (monotonic).
    /// Must be called *after* the publication it vouches for.
    pub fn ack(&self, ticket: u64) {
        self.ack.fetch_max(ticket, Ordering::SeqCst);
    }

    /// Caller side: has `ticket` been acknowledged?
    pub fn acked(&self, ticket: u64) -> bool {
        self.ack.load(Ordering::SeqCst) >= ticket
    }

    /// Caller side: wait until `ticket` is acknowledged or `dead`
    /// reports true (a dead worker will never ack).
    pub fn wait(&self, ticket: u64, dead: impl Fn() -> bool) {
        while !self.acked(ticket) {
            if dead() {
                return;
            }
            std::thread::yield_now();
        }
    }
}

/// One shard's published state at some epoch: the serialized sketch
/// plus enough metadata to reason about freshness.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard published this.
    pub shard: usize,
    /// The publishing shard's epoch counter at publication.
    pub epoch: u64,
    /// Values the shard had fully inserted when it published.
    pub values_done: u64,
    /// The sketch in wire format ([`SketchSerialize::encode`]) —
    /// queries answer straight from these bytes via
    /// [`SketchView`].
    pub bytes: Vec<u8>,
}

/// A point-in-time query handle over one or more published
/// [`ShardSnapshot`]s — the single query surface returned by
/// `ShardedEngine::query`, `KeyedEngine::query`, and used by the
/// server.
///
/// Single-part handles answer quantile/count/bounds **zero-copy** from
/// the serialized bytes via [`SketchView`]; multi-part handles decode
/// and fold through [`merge_tree`] once, then answer from the merged
/// sketch. Either way the handle is fully detached from the engine:
/// holding or querying it never blocks ingest, and ingest never
/// invalidates it.
pub struct SnapshotHandle<S> {
    parts: Vec<Arc<ShardSnapshot>>,
    /// Merged-sketch cache: pre-filled by [`Self::from_sketch`], or
    /// lazily by the first multi-part quantile query.
    decoded: Mutex<Option<S>>,
}

impl<S> std::fmt::Debug for SnapshotHandle<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHandle")
            .field("parts", &self.parts)
            .finish_non_exhaustive()
    }
}

impl<S> SnapshotHandle<S> {
    /// A handle over published shard parts.
    pub fn from_parts(parts: Vec<Arc<ShardSnapshot>>) -> Self {
        Self {
            parts,
            decoded: Mutex::new(None),
        }
    }

    /// The serialized shard parts backing this handle.
    pub fn parts(&self) -> &[Arc<ShardSnapshot>] {
        &self.parts
    }

    /// Highest epoch among the parts (0 for an empty handle).
    pub fn max_epoch(&self) -> u64 {
        self.parts.iter().map(|p| p.epoch).max().unwrap_or(0)
    }
}

impl<S: MergeableSketch + SketchSerialize> SnapshotHandle<S> {
    /// A handle over an already-materialised sketch (e.g. the merged
    /// result of a rollup range query). The sketch is serialized into a
    /// single part, so the handle answers exactly like a published one.
    pub fn from_sketch(sketch: S) -> Self {
        let bytes = sketch.encode();
        let values_done = sketch.count();
        Self {
            parts: vec![Arc::new(ShardSnapshot {
                shard: 0,
                epoch: 0,
                values_done,
                bytes,
            })],
            decoded: Mutex::new(Some(sketch)),
        }
    }

    /// Decode and merge every part into one sketch (`None` if the
    /// handle has no parts). The result is cached, so repeated
    /// multi-part queries decode once.
    pub fn merged(&self) -> Result<Option<S>, SketchError>
    where
        S: Clone,
    {
        let mut cache = self.decoded.lock().expect("snapshot cache poisoned");
        if let Some(s) = cache.as_ref() {
            return Ok(Some(s.clone()));
        }
        if self.parts.is_empty() {
            return Ok(None);
        }
        let decoded: Result<Vec<S>, _> =
            self.parts.iter().map(|p| S::decode(&p.bytes)).collect();
        let merged = merge_tree(decoded?).map_err(SketchError::Merge)?;
        *cache = merged.clone();
        Ok(merged)
    }
}

impl<S: MergeableSketch + SketchView + Clone> SnapshotHandle<S> {
    /// Total values across the parts — zero-copy via
    /// [`SketchView::count_from_bytes`].
    pub fn count(&self) -> Result<u64, SketchError> {
        let mut total = 0u64;
        for p in &self.parts {
            total += S::count_from_bytes(&p.bytes)?;
        }
        Ok(total)
    }

    /// (min, max) across the parts, `None` while empty — zero-copy via
    /// [`SketchView::bounds_from_bytes`] (which reports the empty
    /// sketch's `(+∞, −∞)` sentinel; this method folds it away).
    pub fn bounds(&self) -> Result<Option<(f64, f64)>, SketchError> {
        let mut acc: Option<(f64, f64)> = None;
        for p in &self.parts {
            let (lo, hi) = S::bounds_from_bytes(&p.bytes)?;
            if lo <= hi {
                acc = Some(match acc {
                    Some((alo, ahi)) => (alo.min(lo), ahi.max(hi)),
                    None => (lo, hi),
                });
            }
        }
        Ok(acc)
    }

    /// The `q`-quantile. Single-part handles answer zero-copy from the
    /// wire bytes (bit-identical to decode-then-query — the
    /// [`SketchView`] contract); multi-part handles answer from the
    /// cached merged sketch.
    pub fn quantile(&self, q: f64) -> Result<f64, SketchError> {
        if self.parts.len() == 1 {
            return S::quantile_from_bytes(&self.parts[0].bytes, q);
        }
        match self.merged()? {
            Some(s) => s.query(q).map_err(SketchError::Query),
            None => Err(SketchError::Query(qsketch_core::QueryError::Empty)),
        }
    }

    /// Many quantiles in one call; the multi-part path pays the
    /// decode+merge once.
    pub fn quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, SketchError> {
        if self.parts.len() == 1 && qs.len() <= 2 {
            return qs
                .iter()
                .map(|&q| S::quantile_from_bytes(&self.parts[0].bytes, q))
                .collect();
        }
        match self.merged()? {
            Some(s) => s.query_many(qs).map_err(SketchError::Query),
            None => Err(SketchError::Query(qsketch_core::QueryError::Empty)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn ring_roundtrips_in_fifo_order() {
        let ring = HandoffRing::<u64>::new(8);
        for i in 0..5 {
            assert!(ring.try_push(i, 1).is_ok());
        }
        for i in 0..5 {
            let (got, _) = ring.try_pop().expect("item");
            assert_eq!(got, i);
            ring.mark_done(1);
        }
        assert!(ring.try_pop().is_none());
        assert_eq!(ring.sent_values(), 5);
        assert_eq!(ring.done_values(), 5);
    }

    #[test]
    fn worker_panic_marks_the_ring_dead() {
        let ring = Arc::new(HandoffRing::<u64>::new(1));
        let r = Arc::clone(&ring);
        let worker = std::thread::spawn(move || {
            let _dead_on_panic = DeadOnPanic(Arc::clone(&r));
            let _ = r.pop_wait();
            panic!("injected worker death");
        });
        ring.push(1, 1);
        assert!(worker.join().is_err(), "worker must have panicked");
        assert!(ring.is_dead(), "guard must flip the dead flag on unwind");
        // Producers must not block on the dead shard: the push degrades
        // to a drop instead of napping forever on a full ring.
        assert!(ring.push(2, 1).dropped);
        ring.wait_drained();
    }

    #[test]
    fn full_ring_hands_the_item_back() {
        let ring = HandoffRing::<u64>::new(2);
        assert!(ring.try_push(1, 1).is_ok());
        assert!(ring.try_push(2, 1).is_ok());
        assert_eq!(ring.try_push(3, 1), Err(3));
        let _ = ring.try_pop().unwrap();
        ring.mark_done(1);
        assert!(ring.try_push(3, 1).is_ok());
    }

    #[test]
    fn capacity_one_ring_still_works() {
        let ring = HandoffRing::<u64>::new(1);
        for lap in 0..100u64 {
            assert!(ring.try_push(lap, 1).is_ok());
            assert_eq!(ring.try_push(lap, 1), Err(lap));
            assert_eq!(ring.try_pop().unwrap().0, lap);
            ring.mark_done(1);
        }
    }

    #[test]
    fn multi_producer_handoff_loses_nothing() {
        let ring = Arc::new(HandoffRing::<Vec<u64>>::new(4));
        let producers = 4;
        let batches = 500;
        let mut handles = Vec::new();
        for p in 0..producers {
            let r = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for b in 0..batches {
                    let payload = vec![(p * batches + b) as u64; 3];
                    let report = r.push(payload, 3);
                    assert!(!report.dropped);
                }
            }));
        }
        let consumer = {
            let r = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match r.pop_wait() {
                        PopState::Item(batch, _) => {
                            seen.push(batch[0]);
                            r.mark_done(batch.len() as u64);
                        }
                        PopState::Idle => {}
                        PopState::Closed => break,
                    }
                }
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        ring.close();
        let mut seen = consumer.join().unwrap();
        assert_eq!(seen.len(), producers * batches);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), producers * batches, "duplicate or lost batch");
        assert_eq!(ring.sent_values(), (producers * batches * 3) as u64);
        assert_eq!(ring.done_values(), ring.sent_values());
    }

    #[test]
    fn dropped_ring_frees_unconsumed_payloads() {
        // Box payloads + a drop counter would need a custom type; Arc
        // strong counts give the same signal for free.
        let payload = Arc::new(42u64);
        let ring = HandoffRing::<Arc<u64>>::new(4);
        for _ in 0..3 {
            assert!(ring.try_push(Arc::clone(&payload), 1).is_ok());
        }
        let popped = ring.try_pop().unwrap().0;
        drop(ring);
        // Alive: the original and the popped clone; the two unconsumed
        // ring slots must have been freed by the ring's Drop.
        assert_eq!(Arc::strong_count(&payload), 2, "ring leaked payloads");
        drop(popped);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn epoch_cell_load_sees_latest_publish() {
        let cell = EpochCell::new(Arc::new(0u64));
        assert_eq!(*cell.load(), 0);
        assert_eq!(cell.epoch(), 0);
        assert_eq!(cell.publish(Arc::new(7)), 1);
        assert_eq!(*cell.load(), 7);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn epoch_cell_reclaims_retired_values() {
        static LIVE: TestCounter = TestCounter::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        {
            let cell = EpochCell::new(Arc::new(Tracked::new()));
            for _ in 0..100 {
                cell.publish(Arc::new(Tracked::new()));
            }
            // No reader is active, so every superseded value must have
            // been reclaimed at its publish's quiescence check.
            assert_eq!(LIVE.load(Ordering::SeqCst), 1);
        }
        assert_eq!(LIVE.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn epoch_cell_readers_race_writer_safely() {
        let cell = Arc::new(EpochCell::new(Arc::new(vec![0u64; 16])));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&cell);
            let s = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !s.load(Ordering::Relaxed) {
                    let v = c.load();
                    // Every element equals the epoch that wrote it: a
                    // torn or freed read would break this.
                    assert!(v.iter().all(|&x| x == v[0]));
                    assert!(v[0] >= last, "epoch went backwards");
                    last = v[0];
                }
            }));
        }
        for e in 1..=2_000u64 {
            cell.publish(Arc::new(vec![e; 16]));
            if e % 256 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 2_000);
    }

    #[test]
    fn epoch_request_roundtrip() {
        let req = EpochRequest::new();
        assert_eq!(req.pending(), None);
        let t1 = req.request();
        let t2 = req.request();
        assert_eq!((t1, t2), (1, 2));
        assert_eq!(req.pending(), Some(2));
        req.ack(2);
        assert!(req.acked(1) && req.acked(2));
        assert_eq!(req.pending(), None);
        req.wait(2, || false); // already acked: returns immediately
        req.wait(99, || true); // dead worker: must not hang
    }
}

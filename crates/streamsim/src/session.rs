//! Session event-time windows (§2.5: "A session window with a timeout of
//! 10 s would start grouping events at time t and keep collecting events
//! until a period of inactivity for 10 s").
//!
//! Sessions are half-open activity intervals separated by gaps of at
//! least `gap_us`. Out-of-order events can bridge two open sessions, which
//! are then merged — the standard SPE session semantics.
//!
//! # Example
//!
//! Two bursts separated by more than the 10 ms gap become two sessions:
//!
//! ```
//! use qsketch_streamsim::event::Event;
//! use qsketch_streamsim::session::SessionWindows;
//!
//! let mut op = SessionWindows::new(10_000, Vec::new);
//! for t in [0u64, 2_000, 4_000] {
//!     op.observe(Event::new(1.0, t, 0)); // first burst
//! }
//! for t in [50_000u64, 53_000] {
//!     op.observe(Event::new(2.0, t, 0)); // second burst, 46 ms later
//! }
//! let fired = op.close();
//! assert_eq!(fired.results.len(), 2);
//! assert_eq!(fired.results[0].items, vec![1.0, 1.0, 1.0]);
//! assert_eq!(fired.results[1].items, vec![2.0, 2.0]);
//! ```

use crate::event::Event;
use crate::window::{FiredWindows, WindowResult, WindowState};

/// One open session: `[first_event, last_event]` plus accumulated state.
struct OpenSession<S> {
    first_us: u64,
    last_us: u64,
    count: u64,
    items: S,
}

/// Event-time session-window operator. A session fires once the watermark
/// passes `last_event + gap` (no more in-gap events can be on time); later
/// events that would have belonged are dropped as late.
pub struct SessionWindows<S, F: FnMut() -> S> {
    gap_us: u64,
    /// Watermark lag (Flink's bounded out-of-orderness): the watermark
    /// trails the max event time by this much, letting moderately late
    /// events merge into — or bridge — still-open sessions.
    watermark_lag_us: u64,
    factory: F,
    /// Open sessions sorted by `first_us`, non-overlapping after merge.
    open: Vec<OpenSession<S>>,
    watermark_us: u64,
    results: Vec<WindowResult<S>>,
    dropped_late: u64,
    total: u64,
}

impl<S: WindowState + Mergeable, F: FnMut() -> S> SessionWindows<S, F> {
    /// Create an operator with the inactivity `gap_us` and no watermark
    /// lag (strictly ascending watermark, like the paper's tumbling
    /// setup).
    pub fn new(gap_us: u64, factory: F) -> Self {
        Self::with_watermark_lag(gap_us, 0, factory)
    }

    /// Create an operator whose watermark trails the max event time by
    /// `watermark_lag_us` (Flink's bounded out-of-orderness strategy).
    pub fn with_watermark_lag(gap_us: u64, watermark_lag_us: u64, factory: F) -> Self {
        assert!(gap_us > 0, "gap must be positive");
        Self {
            gap_us,
            watermark_lag_us,
            factory,
            open: Vec::new(),
            watermark_us: 0,
            results: Vec::new(),
            dropped_late: 0,
            total: 0,
        }
    }

    /// Number of currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.open.len()
    }

    /// Feed one event in ingestion order.
    pub fn observe(&mut self, event: Event) {
        self.total += 1;
        let t = event.event_time_us;

        let candidate = t.saturating_sub(self.watermark_lag_us);
        if candidate > self.watermark_us {
            self.watermark_us = candidate;
            // Fire sessions whose gap has elapsed before the watermark.
            let gap = self.gap_us;
            let watermark = self.watermark_us;
            let mut i = 0;
            while i < self.open.len() {
                if self.open[i].last_us + gap <= watermark {
                    let s = self.open.remove(i);
                    self.results.push(WindowResult {
                        start_us: s.first_us,
                        end_us: s.last_us + gap,
                        count: s.count,
                        items: s.items,
                    });
                } else {
                    i += 1;
                }
            }
        }

        // Late if the event's session slot has already been emitted: it
        // would attach to a session that ended (fired) at or after t.
        if t + self.gap_us <= self.watermark_us
            && !self
                .open
                .iter()
                .any(|s| t + self.gap_us >= s.first_us && s.last_us + self.gap_us >= t)
        {
            self.dropped_late += 1;
            return;
        }

        // Find every open session within gap distance of t and merge them
        // around the event.
        let gap = self.gap_us;
        let mut merged: Option<OpenSession<S>> = None;
        let mut keep = Vec::with_capacity(self.open.len());
        for s in self.open.drain(..) {
            let touches = t + gap >= s.first_us && s.last_us + gap >= t;
            if touches {
                merged = Some(match merged {
                    None => s,
                    Some(mut acc) => {
                        acc.first_us = acc.first_us.min(s.first_us);
                        acc.last_us = acc.last_us.max(s.last_us);
                        acc.count += s.count;
                        acc.items.merge_from(s.items);
                        acc
                    }
                });
            } else {
                keep.push(s);
            }
        }
        self.open = keep;

        let mut session = merged.unwrap_or_else(|| OpenSession {
            first_us: t,
            last_us: t,
            count: 0,
            items: (self.factory)(),
        });
        session.first_us = session.first_us.min(t);
        session.last_us = session.last_us.max(t);
        session.items.observe(event.value);
        session.count += 1;
        let pos = self
            .open
            .partition_point(|s| s.first_us < session.first_us);
        self.open.insert(pos, session);
    }

    /// End of stream: fire remaining sessions.
    pub fn close(mut self) -> FiredWindows<S> {
        let gap = self.gap_us;
        for s in self.open.drain(..) {
            self.results.push(WindowResult {
                start_us: s.first_us,
                end_us: s.last_us + gap,
                count: s.count,
                items: s.items,
            });
        }
        self.results.sort_by_key(|w| w.start_us);
        FiredWindows {
            results: self.results,
            dropped_late: self.dropped_late,
            total: self.total,
        }
    }
}

/// State that can absorb another instance when two sessions merge.
pub trait Mergeable {
    /// Merge `other`'s contents into `self`.
    fn merge_from(&mut self, other: Self);
}

impl Mergeable for Vec<f64> {
    fn merge_from(&mut self, mut other: Self) {
        self.append(&mut other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(value: f64, event_ms: u64) -> Event {
        Event::new(value, event_ms * 1_000, 0)
    }

    fn run(events: Vec<Event>, gap_ms: u64) -> FiredWindows<Vec<f64>> {
        let mut op = SessionWindows::new(gap_ms * 1_000, Vec::new);
        for e in events {
            op.observe(e);
        }
        op.close()
    }

    #[test]
    fn paper_worked_example() {
        // §2.5: timeout 10 s, last event at t+23 s => session spans t to
        // t+33 s.
        let fired = run(
            vec![ev(1.0, 0), ev(2.0, 9_000), ev(3.0, 16_000), ev(4.0, 23_000)],
            10_000,
        );
        assert_eq!(fired.results.len(), 1);
        let s = &fired.results[0];
        assert_eq!(s.start_us, 0);
        assert_eq!(s.end_us, 33_000_000);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn gap_splits_sessions() {
        let fired = run(vec![ev(1.0, 0), ev(2.0, 5), ev(3.0, 100), ev(4.0, 103)], 10);
        assert_eq!(fired.results.len(), 2);
        assert_eq!(fired.results[0].items, vec![1.0, 2.0]);
        assert_eq!(fired.results[1].items, vec![3.0, 4.0]);
    }

    #[test]
    fn out_of_order_event_bridges_two_sessions() {
        // A lagging watermark (bounded out-of-orderness) keeps both
        // sessions open long enough for a straggler to bridge them.
        let mut op = SessionWindows::with_watermark_lag(10_000, 30_000, Vec::new);
        op.observe(ev(1.0, 0));
        op.observe(ev(2.0, 15)); // 15ms > 0 + 10ms gap: separate session
        assert_eq!(op.open_sessions(), 2);
        op.observe(ev(3.0, 8)); // bridges: 8 is within gap of both
        assert_eq!(op.open_sessions(), 1);
        let fired = op.close();
        assert_eq!(fired.results.len(), 1);
        assert_eq!(fired.results[0].count, 3);
    }

    #[test]
    fn zero_lag_fires_eagerly_so_bridging_is_impossible() {
        // With a strictly ascending watermark the older session fires the
        // moment a gap-exceeding event arrives — the §2.6 discipline.
        let mut op = SessionWindows::new(10_000, Vec::new);
        op.observe(ev(1.0, 0));
        op.observe(ev(2.0, 15));
        assert_eq!(op.open_sessions(), 1);
        let fired = op.close();
        assert_eq!(fired.results.len(), 2);
    }

    #[test]
    fn session_fires_on_watermark_past_gap() {
        let mut op = SessionWindows::new(10_000, Vec::new);
        op.observe(ev(1.0, 0));
        op.observe(ev(2.0, 30)); // watermark 30ms fires session [0, 10)
        assert_eq!(op.open_sessions(), 1); // only the new session remains
        let fired = op.close();
        assert_eq!(fired.results.len(), 2);
    }

    #[test]
    fn late_event_after_session_fired_is_dropped() {
        let mut op = SessionWindows::new(10_000, Vec::new);
        op.observe(ev(1.0, 0));
        op.observe(ev(2.0, 50)); // fires session around t=0
        op.observe(ev(3.0, 2)); // belongs to the fired session: late
        let fired = op.close();
        assert_eq!(fired.dropped_late, 1);
        assert_eq!(fired.results.len(), 2);
    }

    #[test]
    fn empty_stream() {
        let fired = run(vec![], 10);
        assert!(fired.results.is_empty());
        assert_eq!(fired.total, 0);
    }
}

//! A single relative compactor with its section-based compaction schedule.

use qsketch_core::rng::CoinFlipper;

/// Smallest section size the adaptive schedule will shrink to.
const MIN_SECTION_SIZE: usize = 4;
/// Initial number of sections per compactor (as in the DataSketches
/// implementation the paper benchmarks).
const INIT_NUM_SECTIONS: usize = 3;

/// One level of the ReqSketch hierarchy.
///
/// The buffer has capacity `2 · num_sections · section_size`. When full,
/// the *compaction schedule* decides how many sections (counted from the
/// unprotected end) participate: `trailing_ones(state) + 1`, so the items
/// nearest the protected end join a compaction only once every
/// `2^num_sections` compactions — this is how "larger items of a buffer are
/// compacted more frequently and smaller items are compacted less
/// frequently" (§3.5, HRA orientation).
#[derive(Debug, Clone)]
pub struct RelativeCompactor {
    /// Items; sorted ascending just before each compaction.
    buffer: Vec<f64>,
    /// Section size `k`; shrinks by √2 as the schedule adapts.
    section_size: usize,
    /// Number of sections; doubles as the schedule adapts.
    num_sections: usize,
    /// Compaction counter driving the schedule.
    state: u64,
    /// True = protect the *largest* values (HRA), false = smallest (LRA).
    hra: bool,
}

impl RelativeCompactor {
    /// Create an empty compactor with initial section size `k`.
    pub fn new(k: usize, hra: bool) -> Self {
        let section_size = k.max(MIN_SECTION_SIZE);
        Self {
            buffer: Vec::with_capacity(2 * INIT_NUM_SECTIONS * section_size),
            section_size,
            num_sections: INIT_NUM_SECTIONS,
            state: 0,
            hra,
        }
    }

    /// Buffer capacity `2 · num_sections · section_size`.
    pub fn capacity(&self) -> usize {
        2 * self.num_sections * self.section_size
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// True when no items are held.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The compaction-schedule state (exposed for merge: §3.5 merges
    /// schedules by bitwise OR).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Bitwise-OR another compactor's schedule state into this one (§3.5).
    pub fn merge_state(&mut self, other_state: u64) {
        self.state |= other_state;
    }

    /// Current section size (for serialisation).
    pub fn section_size(&self) -> usize {
        self.section_size
    }

    /// Current number of sections (for serialisation).
    pub fn num_sections(&self) -> usize {
        self.num_sections
    }

    /// Reassemble a compactor from serialised parts; validates the
    /// schedule geometry.
    pub fn from_parts(
        buffer: Vec<f64>,
        section_size: usize,
        num_sections: usize,
        state: u64,
        hra: bool,
    ) -> Result<Self, String> {
        if section_size < MIN_SECTION_SIZE {
            return Err(format!("section size {section_size} below floor"));
        }
        if num_sections == 0 || num_sections > 1 << 16 {
            return Err(format!("{num_sections} sections out of range"));
        }
        if buffer.iter().any(|v| v.is_nan()) {
            return Err("NaN item in buffer".into());
        }
        Ok(Self {
            buffer,
            section_size,
            num_sections,
            state,
            hra,
        })
    }

    /// Append one item (does not trigger compaction; the sketch decides).
    pub fn push(&mut self, value: f64) {
        self.buffer.push(value);
    }

    /// Append many items.
    pub fn push_all(&mut self, values: &[f64]) {
        self.buffer.extend_from_slice(values);
    }

    /// Pre-allocate room for `additional` more items (the sketch's bulk
    /// insert path reserves a whole chunk at once).
    pub fn reserve(&mut self, additional: usize) {
        self.buffer.reserve(additional);
    }

    /// Borrow the retained items (unsorted).
    pub fn items(&self) -> &[f64] {
        &self.buffer
    }

    /// True when the buffer is at or over capacity and must compact.
    pub fn is_full(&self) -> bool {
        self.buffer.len() >= self.capacity()
    }

    /// Number of sections compacted next, per the schedule:
    /// `min(trailing_ones(state) + 1, num_sections)`.
    fn sections_to_compact(&self) -> usize {
        ((self.state.trailing_ones() as usize) + 1).min(self.num_sections)
    }

    /// Grow the schedule once the state cycles: double the sections and
    /// shrink the section size by √2 (DataSketches' `ensureEnoughSections`),
    /// which lets deep compactors spread compactions across a finer
    /// schedule as the stream grows.
    fn adapt_schedule(&mut self) {
        if self.state >= (1u64 << self.num_sections.min(62))
            && self.section_size > MIN_SECTION_SIZE
        {
            let shrunk = ((self.section_size as f64) / std::f64::consts::SQRT_2).round() as usize;
            self.section_size = shrunk.max(MIN_SECTION_SIZE);
            self.num_sections *= 2;
        }
    }

    /// Compact the buffer: sort, select the compaction region at the
    /// unprotected end, promote alternate items, retain the rest of the
    /// buffer. Returns the promoted items (weight doubles at the level
    /// above).
    pub fn compact(&mut self, rng: &mut CoinFlipper) -> Vec<f64> {
        debug_assert!(self.buffer.len() >= 2, "compacting a near-empty buffer");
        self.buffer
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN inserted into sketch"));

        // L = sections_to_compact * section_size, capped at half the
        // buffer so the protected half always survives (§3.5: L <= B/2).
        let l = (self.sections_to_compact() * self.section_size)
            .min(self.buffer.len() / 2)
            .max(2)
            & !1; // even so promotion halves it exactly
        let l = l.min(self.buffer.len());

        // HRA protects the top of the sorted buffer, so the compaction
        // region is the *bottom* L items; LRA mirrors.
        let compacted: Vec<f64> = if self.hra {
            self.buffer.drain(..l).collect()
        } else {
            let start = self.buffer.len() - l;
            self.buffer.drain(start..).collect()
        };

        let offset = usize::from(rng.flip());
        let promoted: Vec<f64> = compacted.iter().skip(offset).step_by(2).copied().collect();

        self.state += 1;
        self.adapt_schedule();
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flipper() -> CoinFlipper {
        CoinFlipper::new(1234)
    }

    #[test]
    fn capacity_formula() {
        let c = RelativeCompactor::new(30, true);
        assert_eq!(c.capacity(), 2 * 3 * 30);
        assert!(!c.is_full());
    }

    #[test]
    fn section_size_floored() {
        let c = RelativeCompactor::new(1, true);
        assert_eq!(c.capacity(), 2 * 3 * MIN_SECTION_SIZE);
    }

    #[test]
    fn schedule_trailing_ones() {
        let mut c = RelativeCompactor::new(8, true);
        // state 0 -> 1 section, 1 -> 2, 2 -> 1, 3 -> 3 (capped at 3).
        assert_eq!(c.sections_to_compact(), 1);
        c.state = 1;
        assert_eq!(c.sections_to_compact(), 2);
        c.state = 2;
        assert_eq!(c.sections_to_compact(), 1);
        c.state = 3;
        assert_eq!(c.sections_to_compact(), 3);
        c.state = 7;
        assert_eq!(c.sections_to_compact(), 3); // capped at num_sections
    }

    #[test]
    fn hra_compaction_protects_largest() {
        let mut c = RelativeCompactor::new(4, true);
        for i in 0..c.capacity() {
            c.push(i as f64);
        }
        let max_before = c.items().iter().cloned().fold(f64::MIN, f64::max);
        let promoted = c.compact(&mut flipper());
        // Promotion halves the compacted region.
        assert!(!promoted.is_empty());
        // The largest item must still be in the buffer (protected end).
        assert!(c.items().contains(&max_before));
        // Promoted items come from the small end.
        let buffer_min = c.items().iter().cloned().fold(f64::MAX, f64::min);
        for &p in &promoted {
            assert!(p <= buffer_min, "promoted {p} should be below retained {buffer_min}");
        }
    }

    #[test]
    fn lra_compaction_protects_smallest() {
        let mut c = RelativeCompactor::new(4, false);
        for i in 0..c.capacity() {
            c.push(i as f64);
        }
        let promoted = c.compact(&mut flipper());
        assert!(c.items().contains(&0.0));
        let buffer_max = c.items().iter().cloned().fold(f64::MIN, f64::max);
        for &p in &promoted {
            assert!(p >= buffer_max);
        }
    }

    #[test]
    fn compaction_conserves_weight() {
        // Each compaction discards half the compacted items and promotes
        // the other half at double weight: total weight is conserved.
        let mut c = RelativeCompactor::new(6, true);
        let n = c.capacity();
        for i in 0..n {
            c.push(i as f64);
        }
        let promoted = c.compact(&mut flipper());
        assert_eq!(c.len() + promoted.len() * 2, n);
    }

    #[test]
    fn state_advances_and_schedule_adapts() {
        let mut c = RelativeCompactor::new(16, true);
        let initial_sections = c.num_sections;
        for round in 0..20 {
            while !c.is_full() {
                c.push(round as f64 * 1000.0 + c.len() as f64);
            }
            c.compact(&mut flipper());
        }
        assert_eq!(c.state(), 20);
        assert!(c.num_sections > initial_sections, "schedule should adapt");
    }

    #[test]
    fn merge_state_is_bitwise_or() {
        let mut c = RelativeCompactor::new(8, true);
        c.state = 0b0101;
        c.merge_state(0b0011);
        assert_eq!(c.state(), 0b0111);
    }
}

//! The ReqSketch front-end: a stack of relative compactors.

use qsketch_core::rng::CoinFlipper;
use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};
use qsketch_kll::SortedView;

use crate::compactor::RelativeCompactor;

/// Which end of the distribution the sketch protects (§3.5, §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankAccuracy {
    /// High-rank accuracy: upper quantiles are most accurate (the paper's
    /// setting — "it significantly reduces the relative error when
    /// estimating the more interesting upper quantiles").
    High,
    /// Low-rank accuracy: lower quantiles are most accurate.
    Low,
}

/// ReqSketch over `f64` values.
#[derive(Debug, Clone)]
pub struct ReqSketch {
    k: usize,
    accuracy: RankAccuracy,
    levels: Vec<RelativeCompactor>,
    count: u64,
    min: f64,
    max: f64,
    rng: CoinFlipper,
}

impl ReqSketch {
    /// Create a sketch with section-size parameter `k`
    /// (the paper's `num_sections`) and the chosen accuracy orientation.
    pub fn new(k: usize, accuracy: RankAccuracy) -> Self {
        Self::with_seed(k, accuracy, 0x5EED_CAFE)
    }

    /// The paper's configuration (§4.2): `num_sections = 30`, HRA.
    pub fn paper_configuration() -> Self {
        Self::new(crate::PAPER_K, RankAccuracy::High)
    }

    /// Create a sketch with an explicit PRNG seed for reproducible
    /// compaction.
    pub fn with_seed(k: usize, accuracy: RankAccuracy, seed: u64) -> Self {
        Self {
            k,
            accuracy,
            levels: vec![RelativeCompactor::new(k, accuracy == RankAccuracy::High)],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rng: CoinFlipper::new(seed),
        }
    }

    /// The `k` parameter.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The accuracy orientation.
    pub fn accuracy(&self) -> RankAccuracy {
        self.accuracy
    }

    /// Number of compactor levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Total retained items across levels (§4.3: 4177 items for
    /// `num_sections = 30` after 1 M Pareto inserts).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(RelativeCompactor::len).sum()
    }

    /// Smallest value seen (exact), `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value seen (exact), `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Compact every full level, cascading promotions upward (§3.5).
    fn compress(&mut self) {
        let mut h = 0;
        while h < self.levels.len() {
            // A merge can leave a level far over capacity; keep compacting
            // it (each compaction removes at least two items).
            while self.levels[h].is_full() {
                let promoted = self.levels[h].compact(&mut self.rng);
                if h + 1 == self.levels.len() {
                    let hra = self.accuracy == RankAccuracy::High;
                    self.levels.push(RelativeCompactor::new(self.k, hra));
                }
                self.levels[h + 1].push_all(&promoted);
            }
            h += 1;
        }
    }

    /// Weighted sorted snapshot of the retained sample (items at level `h`
    /// weigh `2^h`), the structure queries binary-search (§4.4.2).
    pub fn sorted_view(&self) -> SortedView {
        let mut items = Vec::with_capacity(self.retained());
        for (h, level) in self.levels.iter().enumerate() {
            let w = 1u64 << h;
            items.extend(level.items().iter().map(|&v| (v, w)));
        }
        SortedView::new(items)
    }

    /// Estimated rank of `x`.
    pub fn rank(&self, x: f64) -> u64 {
        self.sorted_view().rank_of(x)
    }
}

impl QuantileSketch for ReqSketch {
    fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return; // trait-level NaN policy: ignore
        }
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.levels[0].push(value);
        if self.levels[0].is_full() {
            self.compress();
        }
    }

    /// Batch kernel: only level 0 can fill during inserts, so the bulk
    /// path reserves its free room once, appends a chunk, and cascades at
    /// most one `compress` per chunk. Chunks are sized to hit the exact
    /// fill level the scalar trigger (`levels[0].is_full()` after a push)
    /// would compact at, so the compaction sequence — and with it the
    /// [`CoinFlipper`] draw order and the adaptive section schedule — is
    /// bit-identical to inserting value by value.
    fn insert_batch(&mut self, values: &[f64]) {
        let mut i = 0;
        while i < values.len() {
            let room = self.levels[0]
                .capacity()
                .saturating_sub(self.levels[0].len())
                // The scalar path always pushes once before re-checking.
                .max(1);
            let take = room.min(values.len() - i);
            let chunk = &values[i..i + take];
            i += take;
            self.levels[0].reserve(take);
            for &value in chunk {
                if value.is_nan() {
                    continue;
                }
                self.count += 1;
                self.min = self.min.min(value);
                self.max = self.max.max(value);
                self.levels[0].push(value);
            }
            if self.levels[0].is_full() {
                self.compress();
            }
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        if q == 1.0 {
            return Ok(self.max);
        }
        let view = self.sorted_view();
        Ok(view.quantile(q, view.total_weight()).clamp(self.min, self.max))
    }

    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        for &q in qs {
            check_quantile(q)?;
        }
        if self.count == 0 {
            return Err(QueryError::Empty);
        }
        let view = self.sorted_view();
        let n = view.total_weight();
        Ok(qs
            .iter()
            .map(|&q| {
                if q == 1.0 {
                    self.max
                } else {
                    view.quantile(q, n).clamp(self.min, self.max)
                }
            })
            .collect())
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn memory_footprint(&self) -> usize {
        // Retained samples plus per-level schedule state — Table 3's
        // ~17 KB at num_sections = 30.
        self.retained() * std::mem::size_of::<f64>()
            + self.levels.len() * 4 * std::mem::size_of::<u64>()
            + 4 * std::mem::size_of::<u64>()
    }

    fn name(&self) -> &'static str {
        "REQ"
    }
}

impl MergeableSketch for ReqSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.accuracy != other.accuracy {
            return Err(MergeError::IncompatibleParameters(
                "cannot merge HRA with LRA sketches".into(),
            ));
        }
        if self.k != other.k {
            return Err(MergeError::IncompatibleParameters(format!(
                "num_sections mismatch: {} vs {}",
                self.k, other.k
            )));
        }
        if other.count == 0 {
            return Ok(());
        }
        let hra = self.accuracy == RankAccuracy::High;
        while self.levels.len() < other.levels.len() {
            self.levels.push(RelativeCompactor::new(self.k, hra));
        }
        // §3.5: concatenate same-level compactors and OR their schedule
        // states, then compact whatever exceeds capacity.
        for (h, level) in other.levels.iter().enumerate() {
            self.levels[h].push_all(level.items());
            self.levels[h].merge_state(level.state());
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compress();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(k: usize, n: u64, acc: RankAccuracy, seed: u64) -> ReqSketch {
        let mut s = ReqSketch::with_seed(k, acc, seed);
        for i in 0..n {
            let v = ((i * 2_654_435_761) % n) as f64;
            s.insert(v);
        }
        s
    }

    #[test]
    fn empty_query_errors() {
        let s = ReqSketch::paper_configuration();
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn small_stream_exact() {
        let mut s = ReqSketch::new(30, RankAccuracy::High);
        for v in [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0] {
            s.insert(v);
        }
        assert_eq!(s.query(0.5).unwrap(), 11.0);
        assert_eq!(s.query(0.9).unwrap(), 30.0);
        assert_eq!(s.query(1.0).unwrap(), 51.0);
    }

    #[test]
    fn hra_upper_quantiles_tight() {
        let n = 500_000u64;
        let s = filled(30, n, RankAccuracy::High, 17);
        // Multiplicative guarantee: rank error relative to the *top* rank
        // distance. Near the max the estimate should be nearly exact.
        for q in [0.95, 0.98, 0.99, 0.999] {
            let est = s.query(q).unwrap();
            let est_rank = est + 1.0; // permutation of 0..n
            let rank_err = (est_rank - q * n as f64).abs() / n as f64;
            assert!(rank_err < 0.01, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn hra_retains_top_values_exactly() {
        let n = 200_000u64;
        let s = filled(30, n, RankAccuracy::High, 3);
        assert_eq!(s.query(1.0).unwrap(), (n - 1) as f64);
        // The very top of the distribution is protected verbatim: the
        // 0.9999 quantile must be within a handful of ranks.
        let est = s.query(0.9999).unwrap();
        assert!((est - 0.9999 * n as f64).abs() < 64.0, "est {est}");
    }

    #[test]
    fn lra_mirrors_hra() {
        let n = 200_000u64;
        let s = filled(30, n, RankAccuracy::Low, 3);
        let est = s.query(0.0001).unwrap();
        assert!((est - 0.0001 * n as f64).abs() < 64.0, "est {est}");
    }

    #[test]
    fn mid_quantiles_reasonable() {
        let n = 500_000u64;
        let s = filled(30, n, RankAccuracy::High, 29);
        for q in [0.25, 0.5, 0.75] {
            let est = s.query(q).unwrap();
            let rank_err = ((est + 1.0) - q * n as f64).abs() / n as f64;
            assert!(rank_err < 0.05, "q={q} rank err {rank_err}");
        }
    }

    #[test]
    fn retained_items_grow_sublinearly() {
        let small = filled(30, 100_000, RankAccuracy::High, 5).retained();
        let large = filled(30, 1_000_000, RankAccuracy::High, 5).retained();
        // 10x the data should yield far less than 10x the samples
        // (O(log^1.5) growth, §3.5).
        assert!(large < small * 3, "small {small}, large {large}");
        // §4.3 reports 4177 retained at 1M with num_sections=30; accept a
        // generous band around that.
        assert!((1_000..8_000).contains(&large), "retained {large}");
    }

    #[test]
    fn merge_combines_streams() {
        let mut a = ReqSketch::with_seed(30, RankAccuracy::High, 1);
        let mut b = ReqSketch::with_seed(30, RankAccuracy::High, 2);
        for i in 0..100_000 {
            a.insert(f64::from(i));
            b.insert(f64::from(i + 100_000));
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 200_000);
        assert_eq!(a.max(), 199_999.0);
        let est = a.query(0.99).unwrap();
        let rank_err = (est / 200_000.0 - 0.99).abs();
        assert!(rank_err < 0.01, "rank err {rank_err}");
    }

    #[test]
    fn merge_rejects_mixed_orientation() {
        let mut a = ReqSketch::new(30, RankAccuracy::High);
        let b = ReqSketch::new(30, RankAccuracy::Low);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn merge_rejects_mismatched_k() {
        let mut a = ReqSketch::new(30, RankAccuracy::High);
        let b = ReqSketch::new(12, RankAccuracy::High);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn merge_empty_is_noop() {
        let mut a = filled(30, 10_000, RankAccuracy::High, 9);
        let before = a.query(0.9).unwrap();
        let b = ReqSketch::new(30, RankAccuracy::High);
        a.merge(&b).unwrap();
        assert_eq!(a.query(0.9).unwrap(), before);
    }

    #[test]
    fn estimates_are_stream_values() {
        // §3.1/§3.5: like KLL, ReqSketch answers with actual retained
        // values.
        let s = filled(30, 100_000, RankAccuracy::High, 23);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let est = s.query(q).unwrap();
            assert_eq!(est.fract(), 0.0, "estimate {est} not a stream value");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = filled(30, 100_000, RankAccuracy::High, 44);
        let b = filled(30, 100_000, RankAccuracy::High, 44);
        for q in [0.25, 0.5, 0.99] {
            assert_eq!(a.query(q).unwrap(), b.query(q).unwrap());
        }
    }

    #[test]
    fn weight_conservation() {
        let n = 300_000u64;
        let s = filled(30, n, RankAccuracy::High, 31);
        let view = s.sorted_view();
        assert_eq!(view.total_weight(), n, "REQ compaction conserves weight");
    }
}

/// Wire format: magic `0xE0`, version 3 (flatwire — FORMATS.md §3.3).
/// Encodes `k`, orientation, scalar state, the compaction coin's exact
/// xorshift state, and each relative compactor's buffer as a delta +
/// prefix-varint compressed sorted run alongside its compaction schedule
/// (section size, section count, state word — the state must survive the
/// trip because merges OR it, §3.5). Queries can run directly over the
/// bytes ([`qsketch_core::flatwire::SketchView`]). Version-2 payloads
/// (LEB128, uncompressed buffers) and version-1 payloads (v2 minus the
/// RNG state; the coin is reseeded) both still decode.
pub use codec::MAGIC as WIRE_MAGIC;

mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{
        self, FlatReader, SketchView, SortedRunCursor, WeightedMergeWalk,
    };
    use qsketch_core::sketch::SketchError;

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0xE0;
    const LEGACY_VERSION: u8 = 2;
    const FLAT_VERSION: u8 = 3;
    const MAX_LEVELS: u64 = 64;
    const MAX_ITEMS_PER_LEVEL: u64 = 1 << 24;

    /// The fixed-position scalar fields of a v3 payload.
    struct FlatHeader {
        k: usize,
        hra: bool,
        count: u64,
        min: f64,
        max: f64,
        rng_state: u64,
        num_levels: u64,
    }

    /// Parse and validate the v3 header; the reader is left positioned at
    /// the first level's schedule fields.
    fn read_flat_header(r: &mut FlatReader<'_>) -> Result<FlatHeader, DecodeError> {
        let k = r.uvarint()? as usize;
        if k == 0 || k > 1 << 16 {
            return Err(DecodeError::Corrupt(format!("k {k} out of range")));
        }
        let hra = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(DecodeError::Corrupt(format!("bad orientation {other}"))),
        };
        let count = r.uvarint()?;
        let min = r.f64()?;
        let max = r.f64()?;
        if min.is_nan() || max.is_nan() {
            return Err(DecodeError::Corrupt("NaN extreme".into()));
        }
        if count > 0 && min > max {
            return Err(DecodeError::Corrupt("min above max".into()));
        }
        let rng_state = r.u64()?;
        let num_levels = r.uvarint()?;
        if num_levels == 0 || num_levels > MAX_LEVELS {
            return Err(DecodeError::Corrupt(format!("{num_levels} levels")));
        }
        Ok(FlatHeader {
            k,
            hra,
            count,
            min,
            max,
            rng_state,
            num_levels,
        })
    }

    /// Read one level's schedule triple and compressed run, returning
    /// `(section_size, num_sections, state, item count, run bytes)`.
    #[allow(clippy::type_complexity)]
    fn read_level<'a>(
        r: &mut FlatReader<'a>,
    ) -> Result<(usize, usize, u64, u64, &'a [u8]), DecodeError> {
        let section_size = r.uvarint()? as usize;
        let num_sections = r.uvarint()? as usize;
        let state = r.uvarint()?;
        let n = r.uvarint()?;
        if n > MAX_ITEMS_PER_LEVEL {
            return Err(DecodeError::Corrupt(format!("{n} items in level")));
        }
        let byte_len = r.uvarint()?;
        let byte_len = usize::try_from(byte_len)
            .ok()
            .filter(|&b| b <= r.remaining())
            .ok_or(DecodeError::UnexpectedEnd)?;
        Ok((section_size, num_sections, state, n, r.slice(byte_len)?))
    }

    impl ReqSketch {
        /// Encode in the previous wire generation (magic `0xE0`, version
        /// 2: LEB128 varints, uncompressed buffers). Kept so the committed
        /// back-compat fixtures can be regenerated and so operators can
        /// write payloads for pre-v3 readers.
        pub fn encode_legacy(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, LEGACY_VERSION);
            w.varint(self.k as u64);
            w.u8(u8::from(self.accuracy == RankAccuracy::High));
            w.varint(self.count);
            w.f64(self.min);
            w.f64(self.max);
            w.varint(self.levels.len() as u64);
            for level in &self.levels {
                w.varint(level.section_size() as u64);
                w.varint(level.num_sections() as u64);
                w.varint(level.state());
                w.f64_slice(level.items());
            }
            w.u64(self.rng.state());
            w.finish()
        }

        /// Decode a pre-flatwire (v1/v2) payload.
        fn decode_legacy(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
            let k = r.varint()? as usize;
            if k == 0 || k > 1 << 16 {
                return Err(DecodeError::Corrupt(format!("k {k} out of range")));
            }
            let hra = match r.u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(DecodeError::Corrupt(format!("bad orientation {other}")))
                }
            };
            let count = r.varint()?;
            let min = r.f64()?;
            let max = r.f64()?;
            if min.is_nan() || max.is_nan() {
                return Err(DecodeError::Corrupt("NaN extreme".into()));
            }
            if count > 0 && min > max {
                return Err(DecodeError::Corrupt("min above max".into()));
            }
            let num_levels = r.varint()?;
            if num_levels == 0 || num_levels > MAX_LEVELS {
                return Err(DecodeError::Corrupt(format!("{num_levels} levels")));
            }
            let mut levels = Vec::with_capacity(num_levels as usize);
            for _ in 0..num_levels {
                let section_size = r.varint()? as usize;
                let num_sections = r.varint()? as usize;
                let state = r.varint()?;
                let buffer = r.f64_vec(MAX_ITEMS_PER_LEVEL)?;
                let level =
                    RelativeCompactor::from_parts(buffer, section_size, num_sections, state, hra)
                        .map_err(DecodeError::Corrupt)?;
                levels.push(level);
            }
            let rng = if r.version() >= 2 {
                CoinFlipper::from_state(r.u64()?)
            } else {
                CoinFlipper::new((k as u64) ^ count.rotate_left(23))
            };
            r.expect_exhausted()?;
            Ok(Self {
                k,
                accuracy: if hra {
                    RankAccuracy::High
                } else {
                    RankAccuracy::Low
                },
                levels,
                count,
                min,
                max,
                rng,
            })
        }
    }

    impl SketchSerialize for ReqSketch {
        fn encode(&self) -> Vec<u8> {
            let mut out = vec![MAGIC, FLAT_VERSION];
            flatwire::write_uvarint(&mut out, self.k as u64);
            out.push(u8::from(self.accuracy == RankAccuracy::High));
            flatwire::write_uvarint(&mut out, self.count);
            flatwire::write_f64(&mut out, self.min);
            flatwire::write_f64(&mut out, self.max);
            out.extend_from_slice(&self.rng.state().to_le_bytes());
            flatwire::write_uvarint(&mut out, self.levels.len() as u64);
            let mut run = Vec::new();
            for level in &self.levels {
                flatwire::write_uvarint(&mut out, level.section_size() as u64);
                flatwire::write_uvarint(&mut out, level.num_sections() as u64);
                flatwire::write_uvarint(&mut out, level.state());
                run.clear();
                flatwire::write_sorted_run(&mut run, level.items());
                flatwire::write_uvarint(&mut out, level.items().len() as u64);
                flatwire::write_uvarint(&mut out, run.len() as u64);
                out.extend_from_slice(&run);
            }
            out
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return Self::decode_legacy(bytes);
            }
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            let mut levels = Vec::with_capacity(h.num_levels as usize);
            for _ in 0..h.num_levels {
                let (section_size, num_sections, state, n, run) = read_level(&mut r)?;
                let mut cursor = SortedRunCursor::new(run, n);
                let mut buffer = Vec::with_capacity(n as usize);
                while let Some(v) = cursor.next()? {
                    buffer.push(v);
                }
                if cursor.bytes_read() != run.len() {
                    return Err(DecodeError::Corrupt("level run length mismatch".into()));
                }
                let level =
                    RelativeCompactor::from_parts(buffer, section_size, num_sections, state, h.hra)
                        .map_err(DecodeError::Corrupt)?;
                levels.push(level);
            }
            r.expect_exhausted()?;
            Ok(Self {
                k: h.k,
                accuracy: if h.hra {
                    RankAccuracy::High
                } else {
                    RankAccuracy::Low
                },
                levels,
                count: h.count,
                min: h.min,
                max: h.max,
                rng: CoinFlipper::from_state(h.rng_state),
            })
        }
    }

    impl SketchView for ReqSketch {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                Ok(read_flat_header(&mut r)?.count)
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.varint()?; // k
                r.u8()?; // orientation
                r.varint()
            }
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            if flatwire::wire_header(bytes)? == (MAGIC, FLAT_VERSION) {
                let mut r = FlatReader::new(&bytes[2..]);
                let h = read_flat_header(&mut r)?;
                Ok((h.min, h.max))
            } else {
                let mut r = Reader::with_header(bytes, MAGIC, LEGACY_VERSION)?;
                r.varint()?; // k
                r.u8()?; // orientation
                r.varint()?; // count
                Ok((r.f64()?, r.f64()?))
            }
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            if flatwire::wire_header(bytes)? != (MAGIC, FLAT_VERSION) {
                return flatwire::quantile_via_decode::<Self>(bytes, q);
            }
            qsketch_core::sketch::check_quantile(q)?;
            let mut r = FlatReader::new(&bytes[2..]);
            let h = read_flat_header(&mut r)?;
            if h.count == 0 {
                return Err(QueryError::Empty.into());
            }
            // The in-memory query answers `q == 1.0` from the exact max
            // before building any view; mirror that.
            if q == 1.0 {
                return Ok(h.max);
            }
            let mut walk = WeightedMergeWalk::new();
            let mut total_weight = 0u64;
            for height in 0..h.num_levels {
                let (_, _, _, n, run) = read_level(&mut r)?;
                let weight = 1u64
                    .checked_shl(height as u32)
                    .ok_or_else(|| DecodeError::Corrupt("level weight overflow".into()))?;
                total_weight = n
                    .checked_mul(weight)
                    .and_then(|lw| total_weight.checked_add(lw))
                    .ok_or_else(|| DecodeError::Corrupt("total weight overflow".into()))?;
                walk.push(SortedRunCursor::new(run, n), weight)?;
            }
            if total_weight == 0 {
                return Err(DecodeError::Corrupt("positive count but no items".into()).into());
            }
            // Same rank arithmetic as `SortedView::quantile`.
            let rank = ((q * total_weight as f64).ceil() as u64).clamp(1, total_weight);
            let est = walk.value_at_rank(rank)?;
            Ok(est.clamp(h.min, h.max))
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_preserves_view_and_schedule() {
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 9);
            for i in 0..200_000 {
                s.insert(f64::from(i));
            }
            let restored = ReqSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.count(), s.count());
            assert_eq!(restored.retained(), s.retained());
            assert_eq!(restored.num_levels(), s.num_levels());
            for (a, b) in restored.levels.iter().zip(&s.levels) {
                assert_eq!(a.state(), b.state(), "schedule state must survive");
                assert_eq!(a.section_size(), b.section_size());
            }
            for q in [0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap());
            }
        }

        #[test]
        fn decoded_sketch_merges() {
            use qsketch_core::sketch::MergeableSketch;
            let mut a = ReqSketch::with_seed(30, RankAccuracy::High, 1);
            let mut b = ReqSketch::with_seed(30, RankAccuracy::High, 2);
            for i in 0..50_000 {
                a.insert(f64::from(i));
                b.insert(f64::from(i + 50_000));
            }
            let mut restored = ReqSketch::decode(&a.encode()).unwrap();
            restored.merge(&b).unwrap();
            assert_eq!(restored.count(), 100_000);
            assert_eq!(restored.max(), 99_999.0);
        }

        #[test]
        fn orientation_survives() {
            let mut s = ReqSketch::with_seed(12, RankAccuracy::Low, 3);
            for i in 0..10_000 {
                s.insert(f64::from(i));
            }
            let restored = ReqSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.accuracy(), RankAccuracy::Low);
        }

        #[test]
        fn truncated_payload_rejected() {
            let mut s = ReqSketch::with_seed(12, RankAccuracy::High, 3);
            for i in 0..1_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode();
            bytes.truncate(bytes.len() / 2);
            assert!(ReqSketch::decode(&bytes).is_err());
        }

        #[test]
        fn v2_round_trip_replays_future_compactions_bitwise() {
            // The v2 format carries the compaction coin's state, so the
            // restored sketch must make the *same* keep/drop decisions on
            // every future compaction as the uninterrupted original.
            let mut live = ReqSketch::with_seed(30, RankAccuracy::High, 77);
            for i in 0..60_000 {
                live.insert(f64::from(i) * 0.37);
            }
            let mut restored = ReqSketch::decode(&live.encode()).unwrap();
            for i in 60_000..200_000 {
                let v = f64::from(i) * 0.37;
                live.insert(v);
                restored.insert(v);
            }
            assert_eq!(restored.retained(), live.retained());
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(
                    restored.query(q).unwrap().to_bits(),
                    live.query(q).unwrap().to_bits(),
                    "q={q}"
                );
            }
        }

        #[test]
        fn v1_payload_still_decodes() {
            // A v1 payload is a v2 payload minus the trailing 8-byte RNG
            // state, with the version byte set to 1.
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 5);
            for i in 0..20_000 {
                s.insert(f64::from(i));
            }
            let mut bytes = s.encode_legacy();
            bytes.truncate(bytes.len() - 8);
            bytes[1] = 1;
            let restored = ReqSketch::decode(&bytes).unwrap();
            assert_eq!(restored.count(), s.count());
            assert_eq!(restored.query(0.5).unwrap(), s.query(0.5).unwrap());
        }

        #[test]
        fn v2_payload_still_decodes() {
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 5);
            for i in 0..20_000 {
                s.insert(f64::from(i));
            }
            let bytes = s.encode_legacy();
            assert_eq!(bytes[1], 2);
            let restored = ReqSketch::decode(&bytes).unwrap();
            assert_eq!(restored.count(), s.count());
            for q in [0.01, 0.5, 0.99, 1.0] {
                assert_eq!(restored.query(q).unwrap(), s.query(q).unwrap(), "q={q}");
            }
        }

        #[test]
        fn v3_is_smaller_than_v2() {
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 5);
            for i in 0..1_000_000u64 {
                s.insert(((i * 2_654_435_761) % 1_000_000) as f64);
            }
            let (v3, v2) = (s.encode().len(), s.encode_legacy().len());
            assert!(v3 < v2, "v3 {v3} bytes vs v2 {v2} bytes");
        }

        #[test]
        fn quantile_from_bytes_matches_decode_then_query() {
            use qsketch_core::flatwire::SketchView;
            let mut s = ReqSketch::with_seed(30, RankAccuracy::High, 17);
            for i in 0..200_000u64 {
                s.insert(((i * 2_654_435_761) % 200_000) as f64);
            }
            for bytes in [s.encode(), s.encode_legacy()] {
                let decoded = ReqSketch::decode(&bytes).unwrap();
                for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                    let via_decode = decoded.query(q).unwrap();
                    let via_view = ReqSketch::quantile_from_bytes(&bytes, q).unwrap();
                    assert_eq!(via_view.to_bits(), via_decode.to_bits(), "q={q}");
                }
                assert_eq!(ReqSketch::count_from_bytes(&bytes).unwrap(), 200_000);
                let (lo, hi) = ReqSketch::bounds_from_bytes(&bytes).unwrap();
                assert_eq!((lo, hi), (s.min(), s.max()));
            }
        }

        #[test]
        fn v3_truncations_and_flips_never_panic() {
            use qsketch_core::flatwire::SketchView;
            let mut s = ReqSketch::with_seed(12, RankAccuracy::High, 1);
            for i in 0..5_000 {
                s.insert(f64::from(i));
            }
            let bytes = s.encode();
            for cut in 0..bytes.len() {
                let _ = ReqSketch::decode(&bytes[..cut]);
                let _ = ReqSketch::quantile_from_bytes(&bytes[..cut], 0.5);
            }
            for i in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[i] ^= 0xA5;
                let _ = ReqSketch::decode(&flipped);
                let _ = ReqSketch::quantile_from_bytes(&flipped, 0.5);
            }
        }
    }
}

//! ReqSketch (§3.5 of the paper): the Relative-Error Quantile sketch of
//! Cormode, Karnin, Liberty, Thaler and Veselý (PODS'21).
//!
//! Like KLL, ReqSketch retains a sample of the stream in a hierarchy of
//! compactors, but its *relative* compactors protect one end of the value
//! range: on compaction only `L ≤ B/2` items from the unprotected end of a
//! full buffer participate (alternate items promoted to the next level,
//! the rest discarded), while the protected end is retained in full. A
//! per-compactor *compaction schedule* — driven by the trailing-ones
//! pattern of a compaction counter — compacts items near the protected end
//! exponentially less often, which yields a multiplicative rank-error
//! guarantee `|R̂(x) − R(x)| ≤ ε·R(x)` in `O(log^1.5(εn)/ε)` space.
//!
//! With *high-rank accuracy* (HRA, the mode the paper benchmarks, §4.2)
//! the largest values are protected, making upper quantiles extremely
//! accurate; LRA mirrors this for the smallest values.
//!
//! # Example
//!
//! ```
//! use qsketch_req::{ReqSketch, RankAccuracy};
//! use qsketch_core::QuantileSketch;
//!
//! let mut req = ReqSketch::with_seed(12, RankAccuracy::High, 99);
//! for i in 1..=50_000 {
//!     req.insert(i as f64);
//! }
//! // HRA: the maximum is retained exactly.
//! assert_eq!(req.query(1.0).unwrap(), 50_000.0);
//! ```

mod compactor;
mod sketch;

pub use compactor::RelativeCompactor;
pub use sketch::{RankAccuracy, ReqSketch, WIRE_MAGIC};

/// The paper's parameterisation (§4.2): `num_sections = 30`, HRA enabled.
pub const PAPER_K: usize = 30;

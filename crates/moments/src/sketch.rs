//! The Moments sketch: power sums in, maximum-entropy quantiles out.

use qsketch_core::sketch::{
    check_quantile, MergeError, MergeableSketch, QuantileSketch, QueryError,
};

use crate::solver::maxent::{solve, SolverConfig};
use crate::solver::chebyshev::{chebyshev_moments, scaled_power_moments};

/// Minimum cardinality required by the solver (§3.2: "A minimum cardinality
/// of 5 is required for this sketch or its underlying algorithm will
/// fail").
const MIN_CARDINALITY: u64 = 5;

/// Moments quantile sketch over `f64` values.
///
/// Holds `count`, `min`, `max` and the power sums `Σ xʲ` for
/// `j = 1..=num_moments`. With [`MomentsSketch::with_compression`] the
/// stream is passed through `arcsinh` first — the transform the reference
/// implementation recommends (and §4.2 applies to the Pareto and Power data
/// sets) to stop large-magnitude values overflowing high powers.
#[derive(Debug, Clone)]
pub struct MomentsSketch {
    /// `power_sums[j] = Σ yʲ`, `power_sums[0] = count`.
    power_sums: Vec<f64>,
    /// Min of the (possibly transformed) values.
    min: f64,
    /// Max of the (possibly transformed) values.
    max: f64,
    /// Whether values pass through `arcsinh` on insert.
    compress: bool,
    config: SolverConfig,
}

impl MomentsSketch {
    /// Create a sketch holding `num_moments` power sums, no compression.
    pub fn new(num_moments: usize) -> Self {
        Self::with_options(num_moments, false, SolverConfig::default())
    }

    /// Create a sketch that `arcsinh`-compresses inserts (for data spanning
    /// many orders of magnitude, §4.2).
    pub fn with_compression(num_moments: usize) -> Self {
        Self::with_options(num_moments, true, SolverConfig::default())
    }

    /// The paper's configuration (§4.2): 12 moments, no compression (the
    /// log transform is enabled per data set via
    /// [`MomentsSketch::with_compression`]).
    pub fn paper_configuration() -> Self {
        Self::new(crate::PAPER_NUM_MOMENTS)
    }

    /// Full-control constructor (solver grid size is the accuracy/query-
    /// time dial discussed in §4.5.5).
    pub fn with_options(num_moments: usize, compress: bool, config: SolverConfig) -> Self {
        assert!(
            (2..=15).contains(&num_moments),
            "num_moments must lie in 2..=15 (the paper reports instability \
             beyond 15), got {num_moments}"
        );
        Self {
            power_sums: vec![0.0; num_moments + 1],
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            compress,
            config,
        }
    }

    /// Number of power sums maintained (the paper's `num_moments`).
    pub fn num_moments(&self) -> usize {
        self.power_sums.len() - 1
    }

    /// Whether `arcsinh` compression is active.
    pub fn is_compressed(&self) -> bool {
        self.compress
    }

    /// Min of the raw (untransformed) stream, `+∞` when empty.
    pub fn min(&self) -> f64 {
        if self.compress && self.min.is_finite() {
            self.min.sinh()
        } else {
            self.min
        }
    }

    /// Max of the raw (untransformed) stream, `−∞` when empty.
    pub fn max(&self) -> f64 {
        if self.compress && self.max.is_finite() {
            self.max.sinh()
        } else {
            self.max
        }
    }

    /// Estimate several quantiles with a single solver run (the batch path
    /// the accuracy harness uses: the paper queries 8 quantiles per
    /// window).
    pub fn estimate_quantiles(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        for &q in qs {
            check_quantile(q)?;
        }
        let n = self.count();
        if n == 0 {
            return Err(QueryError::Empty);
        }
        if n < MIN_CARDINALITY {
            return Err(QueryError::EstimationFailed(format!(
                "moments sketch requires cardinality >= {MIN_CARDINALITY}, have {n}"
            )));
        }
        if self.max <= self.min {
            // Constant stream: every quantile is that value.
            return Ok(vec![self.min(); qs.len()]);
        }

        let scaled = scaled_power_moments(&self.power_sums, self.min, self.max);
        let target = chebyshev_moments(&scaled);
        let solution = solve(&target, &self.config)
            .map_err(|e| QueryError::EstimationFailed(e.to_string()))?;

        Ok(qs
            .iter()
            .map(|&q| {
                let u = solution.quantile(q);
                let y = self.min + (u + 1.0) / 2.0 * (self.max - self.min);
                if self.compress {
                    y.sinh()
                } else {
                    y
                }
            })
            .collect())
    }
}

impl MomentsSketch {
    /// Estimated CDF at `x`, read from the fitted maximum-entropy
    /// density.
    pub fn cdf(&self, x: f64) -> Result<f64, QueryError> {
        let n = self.count();
        if n == 0 {
            return Err(QueryError::Empty);
        }
        if n < MIN_CARDINALITY {
            return Err(QueryError::EstimationFailed(format!(
                "moments sketch requires cardinality >= {MIN_CARDINALITY}, have {n}"
            )));
        }
        let y = if self.compress { x.asinh() } else { x };
        if self.max <= self.min {
            return Ok(if y >= self.min { 1.0 } else { 0.0 });
        }
        if y <= self.min {
            return Ok(0.0);
        }
        if y >= self.max {
            return Ok(1.0);
        }
        let scaled = scaled_power_moments(&self.power_sums, self.min, self.max);
        let target = chebyshev_moments(&scaled);
        let solution = solve(&target, &self.config)
            .map_err(|e| QueryError::EstimationFailed(e.to_string()))?;
        let u = 2.0 * (y - self.min) / (self.max - self.min) - 1.0;
        Ok(solution.cdf_at(u))
    }
}

impl QuantileSketch for MomentsSketch {
    fn insert(&mut self, value: f64) {
        if value.is_nan() {
            return; // trait-level NaN policy: ignore
        }
        let y = if self.compress { value.asinh() } else { value };
        self.min = self.min.min(y);
        self.max = self.max.max(y);
        // Update Σ yʲ incrementally: one multiply per moment (§4.4.1:
        // "Moments Sketch updates each of the num_moments moments").
        let mut p = 1.0;
        for s in &mut self.power_sums {
            *s += p;
            p *= y;
        }
    }

    /// Insert `count` occurrences of `value` at once. The transform and
    /// the power chain run once (not per occurrence), and each sum
    /// replays the scalar path's additions — `count` adds of the same
    /// `yʲ`, in the same order — so the state stays bit-identical to
    /// `count` calls of [`QuantileSketch::insert`] (a plain `+= count·yʲ`
    /// rounds differently). Once an addition stops changing the sum it
    /// never will again, so each sum's loop can stop at its
    /// floating-point fixed point — worst case this costs the same adds
    /// as the scalar path, but skips its per-occurrence transform and
    /// power chain.
    fn insert_n(&mut self, value: f64, count: u64) {
        if count == 0 || value.is_nan() {
            return;
        }
        let y = if self.compress { value.asinh() } else { value };
        self.min = self.min.min(y);
        self.max = self.max.max(y);
        let mut p = 1.0;
        for s in &mut self.power_sums {
            for _ in 0..count {
                let next = *s + p;
                if next.to_bits() == s.to_bits() {
                    break; // fixed point: further adds are no-ops
                }
                *s = next;
            }
            p *= y;
        }
    }

    /// Batch kernel: the scalar loop's `p *= y` chain serialises every
    /// multiply; processing four values at a time keeps four independent
    /// power chains in flight (ILP / auto-vectorizable) while performing
    /// *the same additions in the same order* per power sum — each `sums[j]`
    /// still receives `y₀ʲ, y₁ʲ, y₂ʲ, y₃ʲ` sequentially and every `yᵢʲ` is
    /// still the j-fold repeated product — so the accumulated state is
    /// bit-identical to four scalar inserts. The arcsinh variant
    /// (`compress = true`) flows through the same block with the transform
    /// applied up front.
    fn insert_batch(&mut self, values: &[f64]) {
        let mut blocks = values.chunks_exact(4);
        for block in blocks.by_ref() {
            let (v0, v1, v2, v3) = (block[0], block[1], block[2], block[3]);
            if v0.is_nan() || v1.is_nan() || v2.is_nan() || v3.is_nan() {
                for &v in block {
                    self.insert(v); // rare path: per-value NaN skipping
                }
                continue;
            }
            let (y0, y1, y2, y3) = if self.compress {
                (v0.asinh(), v1.asinh(), v2.asinh(), v3.asinh())
            } else {
                (v0, v1, v2, v3)
            };
            self.min = self.min.min(y0).min(y1).min(y2).min(y3);
            self.max = self.max.max(y0).max(y1).max(y2).max(y3);
            let (mut p0, mut p1, mut p2, mut p3) = (1.0f64, 1.0f64, 1.0f64, 1.0f64);
            for s in &mut self.power_sums {
                *s += p0;
                *s += p1;
                *s += p2;
                *s += p3;
                p0 *= y0;
                p1 *= y1;
                p2 *= y2;
                p3 *= y3;
            }
        }
        for &v in blocks.remainder() {
            self.insert(v);
        }
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        Ok(self.estimate_quantiles(&[q])?[0])
    }

    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        // One solver run for the whole batch (§4.4.2: the solve dominates).
        self.estimate_quantiles(qs)
    }

    fn count(&self) -> u64 {
        self.power_sums[0] as u64
    }

    fn memory_footprint(&self) -> usize {
        // k+1 power sums + min + max: ~15 doubles at k = 12, the 0.14 KB of
        // Table 3.
        (self.power_sums.len() + 2) * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "Moments"
    }
}

impl MergeableSketch for MomentsSketch {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.num_moments() != other.num_moments() {
            return Err(MergeError::IncompatibleParameters(format!(
                "num_moments mismatch: {} vs {}",
                self.num_moments(),
                other.num_moments()
            )));
        }
        if self.compress != other.compress {
            return Err(MergeError::IncompatibleParameters(
                "compression mismatch".into(),
            ));
        }
        // §3.2/§4.4.3: "the merge operation involves simply adding together
        // only the stored moments ... and recomputing the minimum and
        // maximum as needed".
        for (s, o) in self.power_sums.iter_mut().zip(&other.power_sums) {
            *s += o;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_query_errors() {
        let s = MomentsSketch::new(12);
        assert_eq!(s.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn below_min_cardinality_fails() {
        let mut s = MomentsSketch::new(12);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.insert(v);
        }
        assert!(matches!(
            s.query(0.5),
            Err(QueryError::EstimationFailed(_))
        ));
    }

    #[test]
    fn uniform_stream_quantiles() {
        let mut s = MomentsSketch::new(12);
        let n = 100_000;
        for i in 0..n {
            s.insert(i as f64 / (n - 1) as f64);
        }
        for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let est = s.query(q).unwrap();
            assert!((est - q).abs() < 0.01, "q={q} est={est}");
        }
    }

    #[test]
    fn constant_stream() {
        let mut s = MomentsSketch::new(12);
        for _ in 0..100 {
            s.insert(42.0);
        }
        assert_eq!(s.query(0.5).unwrap(), 42.0);
        assert_eq!(s.query(0.99).unwrap(), 42.0);
    }

    #[test]
    fn linear_stream_median() {
        let mut s = MomentsSketch::new(12);
        for i in 1..=10_000 {
            s.insert(i as f64);
        }
        let est = s.query(0.5).unwrap();
        assert!((est - 5_000.0).abs() / 10_000.0 < 0.02, "median {est}");
    }

    #[test]
    fn batch_matches_individual_queries() {
        let mut s = MomentsSketch::new(10);
        for i in 0..5_000 {
            s.insert((i % 100) as f64);
        }
        let batch = s.estimate_quantiles(&[0.25, 0.5, 0.75]).unwrap();
        for (i, &q) in [0.25, 0.5, 0.75].iter().enumerate() {
            assert_eq!(batch[i], s.query(q).unwrap());
        }
    }

    #[test]
    fn compression_handles_huge_magnitudes() {
        // Without arcsinh, x^12 of 1e40 overflows f64 range; compression
        // keeps the sketch usable (§3.2's overflow discussion).
        let mut s = MomentsSketch::with_compression(12);
        let mut x = 1.0;
        for _ in 0..10_000 {
            x = if x > 1e40 { 1.0 } else { x * 1.03 };
            s.insert(x);
        }
        let est = s.query(0.5).unwrap();
        assert!(est.is_finite() && est > 0.0);
    }

    #[test]
    fn uncompressed_overflow_reports_failure_not_garbage() {
        let mut s = MomentsSketch::new(12);
        for i in 0..1000 {
            s.insert(1e60 * (1.0 + i as f64 / 1000.0));
        }
        // Power sums overflow to inf: the solver must refuse rather than
        // return a bogus number.
        match s.query(0.5) {
            Err(QueryError::EstimationFailed(_)) => {}
            Ok(v) => assert!(v.is_finite(), "if it answers, it must be finite"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn merge_is_exact_sum() {
        let mut a = MomentsSketch::new(8);
        let mut b = MomentsSketch::new(8);
        let mut whole = MomentsSketch::new(8);
        for i in 0..1_000 {
            let x = (i as f64).sin() + 2.0;
            if i % 2 == 0 {
                a.insert(x);
            } else {
                b.insert(x);
            }
            whole.insert(x);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), whole.count());
        // Merging only adds power sums, so up to float summation order the
        // merged sketch is the whole-stream sketch.
        for q in [0.5, 0.95] {
            let m = a.query(q).unwrap();
            let w = whole.query(q).unwrap();
            assert!(((m - w) / w).abs() < 1e-6, "q={q}: merged {m} whole {w}");
        }
    }

    #[test]
    fn merge_rejects_mismatched_parameters() {
        let mut a = MomentsSketch::new(8);
        let b = MomentsSketch::new(10);
        assert!(matches!(
            a.merge(&b),
            Err(MergeError::IncompatibleParameters(_))
        ));
        let mut c = MomentsSketch::new(8);
        let d = MomentsSketch::with_compression(8);
        assert!(matches!(
            c.merge(&d),
            Err(MergeError::IncompatibleParameters(_))
        ));
    }

    #[test]
    fn bimodal_data_mid_quantile_struggles() {
        // §4.5.4: the Power data set's bimodal shape defeats the moment
        // fit between the humps — mid-quantile error is visibly worse than
        // tail error. Reproduce the *shape* of that finding.
        let mut s = MomentsSketch::new(12);
        let mut data = Vec::new();
        for i in 0..40_000 {
            // Two tight humps at 1 and 9.
            let x = if i % 2 == 0 {
                1.0 + ((i / 2) % 100) as f64 / 1000.0
            } else {
                9.0 + ((i / 2) % 100) as f64 / 1000.0
            };
            data.push(x);
            s.insert(x);
        }
        data.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q95_truth = data[(0.95 * data.len() as f64) as usize];
        let est95 = s.query(0.95).unwrap();
        let rel95 = ((est95 - q95_truth) / q95_truth).abs();
        // The tail (inside a hump) is recoverable...
        assert!(rel95 < 0.2, "tail error {rel95}");
        // ...and the estimate is at least finite and within range for the
        // trough median.
        let est50 = s.query(0.5).unwrap();
        assert!((1.0..=9.2).contains(&est50), "median {est50}");
    }

    #[test]
    fn insert_n_equals_repeated_inserts() {
        let mut a = MomentsSketch::new(10);
        let mut b = MomentsSketch::new(10);
        for (v, n) in [(3.5, 100u64), (42.0, 17), (7.0, 83)] {
            a.insert_n(v, n);
            for _ in 0..n {
                b.insert(v);
            }
        }
        assert_eq!(a.count(), b.count());
        // The invariant is on the summary itself: identical power sums
        // (up to float summation order) and extremes.
        for (x, y) in a.power_sums.iter().zip(&b.power_sums) {
            let denom = y.abs().max(1.0);
            assert!(((x - y) / denom).abs() < 1e-9, "{x} vs {y}");
        }
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }

    #[test]
    fn cdf_tracks_uniform_data() {
        let mut s = MomentsSketch::new(12);
        let n = 50_000;
        for i in 0..n {
            s.insert(i as f64 / (n - 1) as f64);
        }
        for x in [0.1, 0.5, 0.9] {
            let c = s.cdf(x).unwrap();
            assert!((c - x).abs() < 0.01, "cdf({x}) = {c}");
        }
        assert_eq!(s.cdf(-1.0).unwrap(), 0.0);
        assert_eq!(s.cdf(2.0).unwrap(), 1.0);
    }

    #[test]
    fn memory_footprint_tiny() {
        let s = MomentsSketch::new(12);
        // Table 3: 0.14 KB.
        assert!(s.memory_footprint() <= 160);
    }

    #[test]
    #[should_panic(expected = "num_moments")]
    fn rejects_too_many_moments() {
        MomentsSketch::new(16);
    }

    #[test]
    fn min_max_round_trip_compression() {
        let mut s = MomentsSketch::with_compression(8);
        for v in [0.5, 2.0, 100.0, 5000.0, 7.0] {
            s.insert(v);
        }
        assert!((s.min() - 0.5).abs() < 1e-9);
        assert!((s.max() - 5000.0).abs() < 1e-6);
    }
}

/// Wire format: magic `0x30`, version 1 — the most compact of all sketch
/// payloads (the §4.4.3 merge-speed winner is also the cheapest to ship).
///
/// Moments deliberately has no v3 flatwire generation (FORMATS.md §3.6):
/// the payload is a fixed handful of `f64` power sums, so delta +
/// prefix-varint compression has nothing to bite on. The
/// [`qsketch_core::flatwire::SketchView`] impl still exists for uniform
/// query-over-bytes plumbing, but `quantile_from_bytes` decodes first —
/// the maximum-entropy solver allocates its working set regardless, so a
/// borrowed-view walk would save nothing.
pub use codec::MAGIC as WIRE_MAGIC;

mod codec {
    use super::*;
    use qsketch_core::codec::{DecodeError, Reader, SketchSerialize, Writer};
    use qsketch_core::flatwire::{self, SketchView};
    use qsketch_core::sketch::SketchError;

    /// Sketch tag on the wire (shared with checkpoint files and the
    /// bench harness's type-erased envelope).
    pub const MAGIC: u8 = 0x30;
    const VERSION: u8 = 1;

    impl MomentsSketch {
        /// Encode in the previous wire generation. Moments never moved
        /// past version 1, so this is byte-identical to
        /// [`SketchSerialize::encode`]; it exists so the cross-sketch
        /// fixture tooling can treat every sketch uniformly.
        pub fn encode_legacy(&self) -> Vec<u8> {
            self.encode()
        }
    }

    impl SketchView for MomentsSketch {
        fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, VERSION)?;
            r.u8()?; // compress flag
            r.f64()?; // min
            r.f64()?; // max
            let len = r.varint()?; // power-sum slice length
            if len == 0 {
                return Err(DecodeError::Corrupt("empty power sums".into()));
            }
            let s0 = r.f64()?;
            if s0 < 0.0 || s0.is_nan() {
                return Err(DecodeError::Corrupt("negative count".into()));
            }
            Ok(s0 as u64)
        }

        fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, VERSION)?;
            r.u8()?; // compress flag
            Ok((r.f64()?, r.f64()?))
        }

        fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError> {
            // Documented exemption from the zero-allocation walk: the
            // maxent solver allocates either way (see module docs).
            flatwire::quantile_via_decode::<Self>(bytes, q)
        }
    }

    impl SketchSerialize for MomentsSketch {
        fn encode(&self) -> Vec<u8> {
            let mut w = Writer::with_header(MAGIC, VERSION);
            w.u8(u8::from(self.compress));
            w.f64(self.min);
            w.f64(self.max);
            w.f64_slice(&self.power_sums);
            w.finish()
        }

        fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
            let mut r = Reader::with_header(bytes, MAGIC, VERSION)?;
            let compress = match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(DecodeError::Corrupt(format!("bad compress flag {other}"))),
            };
            let min = r.f64()?;
            let max = r.f64()?;
            let power_sums = r.f64_vec(64)?;
            r.expect_exhausted()?;
            let k = power_sums.len().saturating_sub(1);
            if !(2..=15).contains(&k) {
                return Err(DecodeError::Corrupt(format!("{k} moments out of range")));
            }
            if power_sums[0] < 0.0 || power_sums[0].is_nan() {
                return Err(DecodeError::Corrupt("negative count".into()));
            }
            Ok(Self {
                power_sums,
                min,
                max,
                compress,
                config: SolverConfig::default(),
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use qsketch_core::sketch::MergeableSketch;

        #[test]
        fn round_trip_bitwise() {
            let mut s = MomentsSketch::with_compression(12);
            for i in 1..=20_000 {
                s.insert(i as f64 * 1.7);
            }
            let restored = MomentsSketch::decode(&s.encode()).unwrap();
            assert_eq!(restored.count(), s.count());
            // Power sums are copied verbatim: estimates agree exactly.
            assert_eq!(restored.query(0.5).unwrap(), s.query(0.5).unwrap());
            assert_eq!(restored.query(0.99).unwrap(), s.query(0.99).unwrap());
        }

        #[test]
        fn payload_under_200_bytes() {
            let mut s = MomentsSketch::new(12);
            for i in 1..=1_000_000 {
                s.insert(i as f64);
            }
            assert!(s.encode().len() < 200, "payload {}", s.encode().len());
        }

        #[test]
        fn decoded_merges_with_live_sketch() {
            let mut a = MomentsSketch::new(8);
            let mut b = MomentsSketch::new(8);
            for i in 1..=1_000 {
                a.insert(i as f64);
                b.insert(i as f64 + 1_000.0);
            }
            let mut restored = MomentsSketch::decode(&a.encode()).unwrap();
            restored.merge(&b).unwrap();
            assert_eq!(restored.count(), 2_000);
        }

        #[test]
        fn quantile_from_bytes_matches_decode_then_query() {
            use qsketch_core::flatwire::SketchView;
            let mut s = MomentsSketch::with_compression(12);
            for i in 1..=20_000 {
                s.insert(i as f64 * 1.7);
            }
            let bytes = s.encode();
            assert_eq!(MomentsSketch::count_from_bytes(&bytes).unwrap(), s.count());
            assert_eq!(
                MomentsSketch::bounds_from_bytes(&bytes).unwrap(),
                (s.min, s.max)
            );
            for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    MomentsSketch::quantile_from_bytes(&bytes, q)
                        .unwrap()
                        .to_bits(),
                    s.query(q).unwrap().to_bits(),
                    "q={q}"
                );
            }
        }

        #[test]
        fn truncations_and_flips_never_panic() {
            use qsketch_core::flatwire::SketchView;
            let mut s = MomentsSketch::new(8);
            for i in 1..=500 {
                s.insert(i as f64);
            }
            let bytes = s.encode();
            for len in 0..bytes.len() {
                let _ = MomentsSketch::decode(&bytes[..len]);
                let _ = MomentsSketch::quantile_from_bytes(&bytes[..len], 0.5);
            }
            for i in 0..bytes.len() {
                let mut flipped = bytes.clone();
                flipped[i] ^= 0xA5;
                let _ = MomentsSketch::decode(&flipped);
                let _ = MomentsSketch::quantile_from_bytes(&flipped, 0.5);
            }
        }

        #[test]
        fn rejects_moment_count_out_of_range() {
            let mut w = qsketch_core::codec::Writer::with_header(0x30, 1);
            w.u8(0);
            w.f64(0.0);
            w.f64(1.0);
            w.f64_slice(&[1.0; 40]); // 39 moments: out of range
            assert!(MomentsSketch::decode(&w.finish()).is_err());
        }
    }
}

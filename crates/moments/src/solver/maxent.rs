//! Damped-Newton maximum-entropy solver on a discretised grid.
//!
//! Finds the density `f(u) = exp(Σᵢ λᵢ·Tᵢ(u))` on `[−1, 1]` whose Chebyshev
//! moments match the sketch's, by minimising the convex dual potential
//!
//! ```text
//! P(λ) = ∫ exp(Σ λᵢ Tᵢ(u)) du − Σ λᵢ μᵢ
//! ```
//!
//! whose gradient is `mᵢ(λ) − μᵢ` (model moments minus target moments) and
//! whose Hessian entries are `½(m_{i+j} + m_{|i−j|})` via the Chebyshev
//! product identity `Tᵢ·Tⱼ = ½(T_{i+j} + T_{|i−j|})`. This is the
//! unconstrained convex optimisation the paper describes as the dominant
//! query cost of the Moments sketch (§4.4.2).

use super::chebyshev::chebyshev_values;
use super::linalg::{dot, norm, SymMatrix};

/// Tuning knobs for the Newton iteration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Number of uniform grid cells on `[−1, 1]`.
    pub grid_size: usize,
    /// Iteration budget before reporting divergence.
    pub max_iters: usize,
    /// Gradient-norm convergence threshold.
    pub tolerance: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            grid_size: crate::DEFAULT_GRID_SIZE,
            // Spiky heavy-tailed streams (e.g. the NYT fare mixture) leave
            // the damped iteration crawling along a flat potential valley;
            // well-conditioned targets still exit in tens of iterations,
            // so the larger budget only taxes the borderline cases.
            max_iters: 2000,
            tolerance: 1e-9,
        }
    }
}

/// Why the solver failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The Newton iteration did not reach the tolerance within budget.
    DidNotConverge,
    /// Target moments are non-finite or inconsistent (e.g. `μ₀ ≠ 1`).
    DegenerateMoments,
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::DidNotConverge => write!(f, "Newton iteration did not converge"),
            SolverError::DegenerateMoments => write!(f, "degenerate target moments"),
        }
    }
}

impl std::error::Error for SolverError {}

/// The fitted density, discretised: `grid[j]` is a cell-centre in
/// `[−1, 1]`, `cell_mass[j]` the probability mass of that cell
/// (sums to 1), `cdf[j]` the cumulative mass through cell `j`.
#[derive(Debug, Clone)]
pub struct MaxEntSolution {
    grid: Vec<f64>,
    cell_mass: Vec<f64>,
    cdf: Vec<f64>,
    iterations: usize,
}

impl MaxEntSolution {
    /// Grid cell-centres.
    pub fn grid(&self) -> &[f64] {
        &self.grid
    }

    /// Per-cell probability mass (normalised).
    pub fn cell_mass(&self) -> &[f64] {
        &self.cell_mass
    }

    /// Newton iterations used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Invert the CDF at `q ∈ (0, 1]`, interpolating linearly inside the
    /// containing cell; returns a position in `[−1, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q));
        let j = self.cdf.partition_point(|&c| c < q);
        if j >= self.grid.len() {
            return 1.0;
        }
        let cell_lo_cdf = if j == 0 { 0.0 } else { self.cdf[j - 1] };
        let mass = self.cell_mass[j];
        let frac = if mass > 0.0 {
            ((q - cell_lo_cdf) / mass).clamp(0.0, 1.0)
        } else {
            0.5
        };
        let half_cell = if self.grid.len() > 1 {
            (self.grid[1] - self.grid[0]) / 2.0
        } else {
            1.0
        };
        (self.grid[j] - half_cell + 2.0 * half_cell * frac).clamp(-1.0, 1.0)
    }

    /// CDF at position `u ∈ [−1, 1]` (piecewise-constant by cell).
    pub fn cdf_at(&self, u: f64) -> f64 {
        let j = self.grid.partition_point(|&g| g <= u);
        if j == 0 {
            0.0
        } else {
            self.cdf[j - 1]
        }
    }
}

/// Fit the maximum-entropy density for the target Chebyshev moments
/// `μ₀..μ_k` (with `μ₀ = 1`).
pub fn solve(target: &[f64], config: &SolverConfig) -> Result<MaxEntSolution, SolverError> {
    let k = target.len() - 1;
    if target.iter().any(|m| !m.is_finite()) || (target[0] - 1.0).abs() > 1e-6 {
        return Err(SolverError::DegenerateMoments);
    }
    // Chebyshev moments of any density on [-1,1] satisfy |E[T_n]| <= 1;
    // violations mean the power-sum arithmetic overflowed or cancelled.
    if target.iter().any(|m| m.abs() > 1.0 + 1e-6) {
        return Err(SolverError::DegenerateMoments);
    }

    let n_grid = config.grid_size;
    let dx = 2.0 / n_grid as f64;
    let grid: Vec<f64> = (0..n_grid).map(|j| -1.0 + dx * (j as f64 + 0.5)).collect();

    // Precompute T_0..T_{2k} on the grid (Hessian needs moments up to 2k).
    let tvals: Vec<Vec<f64>> = {
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(n_grid); 2 * k + 1];
        for &x in &grid {
            let v = chebyshev_values(2 * k, x);
            for (n, col) in cols.iter_mut().enumerate() {
                col.push(v[n]);
            }
        }
        cols
    };

    let mut lambda = vec![0.0; k + 1];
    // Start from the uniform density on [-1,1]: exp(λ₀) = ½.
    lambda[0] = (0.5f64).ln();

    let mut f = vec![0.0; n_grid]; // cell masses exp(Σ λ_i T_i(x_j))·dx
    let mut moments = vec![0.0; 2 * k + 1];

    let eval = |lambda: &[f64], f: &mut Vec<f64>, moments: &mut Vec<f64>| -> f64 {
        for (j, fj) in f.iter_mut().enumerate() {
            let mut e = 0.0;
            for (i, &l) in lambda.iter().enumerate() {
                e += l * tvals[i][j];
            }
            *fj = e.exp() * dx;
        }
        for (n, m) in moments.iter_mut().enumerate() {
            *m = dot(&tvals[n], f);
        }
        // Potential value: ∫f − Σ λᵢ μᵢ.
        moments[0] - dot(lambda, target)
    };

    let mut potential = eval(&lambda, &mut f, &mut moments);

    for iter in 0..config.max_iters {
        // Gradient: model moments minus target.
        let grad: Vec<f64> = (0..=k).map(|i| moments[i] - target[i]).collect();
        if norm(&grad) < config.tolerance {
            return Ok(finish(grid, f, moments[0], iter));
        }

        // Hessian via the Chebyshev product identity.
        let mut hess = SymMatrix::zeros(k + 1);
        for i in 0..=k {
            for j in 0..=k {
                let v = 0.5 * (moments[i + j] + moments[i.abs_diff(j)]);
                hess.set(i, j, v);
            }
        }

        let mut step = match hess.solve(&grad) {
            Some(d) => d,
            None => return Err(SolverError::DidNotConverge),
        };
        for s in &mut step {
            *s = -*s;
        }

        // Backtracking line search on the convex potential.
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..40 {
            let trial: Vec<f64> = lambda.iter().zip(&step).map(|(l, s)| l + t * s).collect();
            let trial_potential = eval(&trial, &mut f, &mut moments);
            if trial_potential.is_finite() && trial_potential < potential + 1e-15 {
                lambda = trial;
                potential = trial_potential;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            // Line search exhausted: the potential is at its numerical
            // floor, so this iterate is the best the grid/precision can
            // reach. Accept it under the same moment-mismatch bound as
            // budget exhaustion below — otherwise whether a borderline
            // fit succeeds would depend on which exit fires first.
            if norm(&grad) < 0.1 * (k as f64).sqrt() {
                // f/moments currently hold the last rejected trial;
                // restore the accepted iterate before reading masses.
                eval(&lambda, &mut f, &mut moments);
                return Ok(finish(grid, f, moments[0], iter));
            }
            return Err(SolverError::DidNotConverge);
        }
    }

    // Accept a best-effort solution when the iteration budget runs out,
    // as the reference implementation does (it runs a fixed step count
    // and reads quantiles from whatever density it reached). §3.2 only
    // bounds the *average* error, and §4.5.3/4.5.4 document exactly this
    // regime: spiky real-world data the max-entropy family fits poorly,
    // yielding elevated-but-usable estimates. Only a grossly unconverged
    // fit (moment mismatch worse than 0.1 per basis function) is refused.
    let grad: Vec<f64> = (0..=k).map(|i| moments[i] - target[i]).collect();
    if norm(&grad) < 0.1 * (k as f64).sqrt() {
        return Ok(finish(grid, f, moments[0], config.max_iters));
    }
    Err(SolverError::DidNotConverge)
}

fn finish(grid: Vec<f64>, mut f: Vec<f64>, total: f64, iterations: usize) -> MaxEntSolution {
    // Normalise cell masses and accumulate the CDF.
    let inv = 1.0 / total;
    let mut cdf = Vec::with_capacity(f.len());
    let mut running = 0.0;
    for m in &mut f {
        *m *= inv;
        running += *m;
        cdf.push(running);
    }
    // Guard against rounding drift at the top.
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    MaxEntSolution {
        grid,
        cell_mass: f,
        cdf,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::chebyshev::{chebyshev_moments, scaled_power_moments};

    fn cheb_moments_of(data: &[f64], k: usize) -> Vec<f64> {
        let mut sums = vec![0.0; k + 1];
        for &x in data {
            for (j, s) in sums.iter_mut().enumerate() {
                *s += x.powi(j as i32);
            }
        }
        let lo = data.iter().cloned().fold(f64::MAX, f64::min);
        let hi = data.iter().cloned().fold(f64::MIN, f64::max);
        chebyshev_moments(&scaled_power_moments(&sums, lo, hi))
    }

    #[test]
    fn uniform_density_is_a_fixed_point() {
        // Target = moments of the uniform density on [-1,1]:
        // E[T_0]=1, E[T_1]=0, E[T_2]=-1/3, E[T_3]=0, E[T_4]=-1/15.
        let target = vec![1.0, 0.0, -1.0 / 3.0, 0.0, -1.0 / 15.0];
        let sol = solve(&target, &SolverConfig::default()).unwrap();
        // Median of the uniform distribution is 0.
        assert!(sol.quantile(0.5).abs() < 0.01);
        assert!((sol.quantile(0.25) + 0.5).abs() < 0.01);
        assert!((sol.quantile(0.75) - 0.5).abs() < 0.01);
    }

    #[test]
    fn recovers_uniform_data_quantiles() {
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 9_999.0).collect();
        let target = cheb_moments_of(&data, 8);
        let sol = solve(&target, &SolverConfig::default()).unwrap();
        // Data scaled to [-1,1]: the q-quantile should sit at 2q-1.
        for q in [0.1, 0.5, 0.9] {
            let u = sol.quantile(q);
            assert!((u - (2.0 * q - 1.0)).abs() < 0.02, "q={q} u={u}");
        }
    }

    #[test]
    fn recovers_skewed_density() {
        // Exponential-ish data squeezed into [0, 1].
        let data: Vec<f64> = (0..20_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 20_000.0;
                -(1.0 - u * (1.0 - (-3.0f64).exp())).ln() / 3.0
            })
            .collect();
        let target = cheb_moments_of(&data, 10);
        let sol = solve(&target, &SolverConfig::default()).unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        for q in [0.25, 0.5, 0.9] {
            let u = sol.quantile(q);
            let est = lo + (u + 1.0) / 2.0 * (hi - lo);
            let truth = sorted[(q * sorted.len() as f64) as usize];
            assert!((est - truth).abs() < 0.03, "q={q}: est {est} truth {truth}");
        }
    }

    #[test]
    fn rejects_non_finite_moments() {
        let target = vec![1.0, f64::NAN, 0.0];
        assert_eq!(
            solve(&target, &SolverConfig::default()).unwrap_err(),
            SolverError::DegenerateMoments
        );
    }

    #[test]
    fn rejects_inconsistent_zeroth_moment() {
        let target = vec![2.0, 0.0, 0.0];
        assert_eq!(
            solve(&target, &SolverConfig::default()).unwrap_err(),
            SolverError::DegenerateMoments
        );
    }

    #[test]
    fn rejects_out_of_range_moments() {
        let target = vec![1.0, 1.7, 0.0];
        assert_eq!(
            solve(&target, &SolverConfig::default()).unwrap_err(),
            SolverError::DegenerateMoments
        );
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let target = vec![1.0, 0.3, -0.2, 0.05];
        let sol = solve(&target, &SolverConfig::default()).unwrap();
        let mut prev = 0.0;
        for &c in &sol.cdf {
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((sol.cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edges() {
        let target = vec![1.0, 0.0, -1.0 / 3.0];
        let sol = solve(&target, &SolverConfig::default()).unwrap();
        assert!(sol.quantile(1.0) > 0.99);
        assert!(sol.quantile(1e-9) < -0.99);
    }
}

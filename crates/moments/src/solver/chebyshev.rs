//! Chebyshev polynomials of the first kind and moment-basis conversions.
//!
//! The maximum-entropy solver works in the Chebyshev basis because the
//! resulting Hessians are far better conditioned than in the raw power
//! basis — this is the same design as the reference `momentsketch`
//! implementation.

/// Coefficients (ascending powers of `x`) of `T_n(x)` for `n = 0..=max_n`.
///
/// Uses the recurrence `T_{n+1}(x) = 2x·T_n(x) − T_{n−1}(x)`.
pub fn chebyshev_coefficients(max_n: usize) -> Vec<Vec<f64>> {
    let mut polys: Vec<Vec<f64>> = Vec::with_capacity(max_n + 1);
    polys.push(vec![1.0]); // T_0 = 1
    if max_n >= 1 {
        polys.push(vec![0.0, 1.0]); // T_1 = x
    }
    for n in 2..=max_n {
        let mut next = vec![0.0; n + 1];
        // 2x * T_{n-1}
        for (i, &c) in polys[n - 1].iter().enumerate() {
            next[i + 1] += 2.0 * c;
        }
        // - T_{n-2}
        for (i, &c) in polys[n - 2].iter().enumerate() {
            next[i] -= c;
        }
        polys.push(next);
    }
    polys
}

/// Evaluate `T_0..=T_max_n` at `x` via the recurrence (no coefficient
/// round-off); returns a vector of length `max_n + 1`.
pub fn chebyshev_values(max_n: usize, x: f64) -> Vec<f64> {
    let mut vals = Vec::with_capacity(max_n + 1);
    vals.push(1.0);
    if max_n >= 1 {
        vals.push(x);
    }
    for n in 2..=max_n {
        let v = 2.0 * x * vals[n - 1] - vals[n - 2];
        vals.push(v);
    }
    vals
}

/// Convert raw power sums `Σ xʲ` (j = 0..=k) over data in `[data_min,
/// data_max]` into *scaled power moments* `E[uʲ]` where
/// `u = (2x − (min+max)) / (max − min) ∈ [−1, 1]`.
///
/// Expands `uʲ = (a·x + b)ʲ` binomially; `a = 2/(max−min)`,
/// `b = −(min+max)/(max−min)`.
pub fn scaled_power_moments(power_sums: &[f64], data_min: f64, data_max: f64) -> Vec<f64> {
    let k = power_sums.len() - 1;
    let count = power_sums[0];
    assert!(count > 0.0, "scaling moments of an empty summary");
    let range = data_max - data_min;
    if range <= 0.0 {
        // Degenerate single-point data: u is identically 0.
        let mut m = vec![0.0; k + 1];
        m[0] = 1.0;
        return m;
    }
    let a = 2.0 / range;
    let b = -(data_min + data_max) / range;

    // Raw moments E[x^j].
    let raw: Vec<f64> = power_sums.iter().map(|&s| s / count).collect();

    let mut scaled = Vec::with_capacity(k + 1);
    for j in 0..=k {
        // E[(a x + b)^j] = sum_{i=0}^{j} C(j,i) a^i b^{j-i} E[x^i]
        let mut sum = 0.0;
        let mut binom = 1.0; // C(j, i)
        for (i, &raw_i) in raw.iter().enumerate().take(j + 1) {
            sum += binom * a.powi(i as i32) * b.powi((j - i) as i32) * raw_i;
            binom = binom * (j - i) as f64 / (i + 1) as f64;
        }
        scaled.push(sum);
    }
    scaled
}

/// Convert scaled power moments `E[uʲ]` into Chebyshev moments
/// `E[T_n(u)]` for `n = 0..=k` using the coefficient expansion of `T_n`.
pub fn chebyshev_moments(scaled_power: &[f64]) -> Vec<f64> {
    let k = scaled_power.len() - 1;
    let polys = chebyshev_coefficients(k);
    polys
        .iter()
        .map(|coeffs| {
            coeffs
                .iter()
                .enumerate()
                .map(|(j, &c)| c * scaled_power[j])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_match_known_polynomials() {
        let p = chebyshev_coefficients(4);
        assert_eq!(p[0], vec![1.0]);
        assert_eq!(p[1], vec![0.0, 1.0]);
        assert_eq!(p[2], vec![-1.0, 0.0, 2.0]); // 2x^2 - 1
        assert_eq!(p[3], vec![0.0, -3.0, 0.0, 4.0]); // 4x^3 - 3x
        assert_eq!(p[4], vec![1.0, 0.0, -8.0, 0.0, 8.0]); // 8x^4 - 8x^2 + 1
    }

    #[test]
    fn values_match_cosine_identity() {
        // T_n(cos t) = cos(n t).
        for &t in &[0.0f64, 0.3, 1.0, 2.5] {
            let x = t.cos();
            let vals = chebyshev_values(8, x);
            for (n, &v) in vals.iter().enumerate() {
                let expect = (n as f64 * t).cos();
                assert!((v - expect).abs() < 1e-12, "T_{n}({x}) = {v} vs {expect}");
            }
        }
    }

    #[test]
    fn values_agree_with_coefficients() {
        let polys = chebyshev_coefficients(10);
        for &x in &[-1.0, -0.5, 0.0, 0.7, 1.0] {
            let vals = chebyshev_values(10, x);
            for (n, poly) in polys.iter().enumerate() {
                let from_coeffs: f64 = poly
                    .iter()
                    .enumerate()
                    .map(|(j, &c)| c * x.powi(j as i32))
                    .sum();
                assert!((vals[n] - from_coeffs).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn scaled_moments_of_symmetric_data() {
        // Data {1, 3}: scaled to {-1, +1}; E[u]=0, E[u^2]=1.
        let power_sums = [2.0, 4.0, 10.0, 28.0]; // n, Σx, Σx², Σx³
        let m = scaled_power_moments(&power_sums, 1.0, 3.0);
        assert!((m[0] - 1.0).abs() < 1e-12);
        assert!(m[1].abs() < 1e-12);
        assert!((m[2] - 1.0).abs() < 1e-12);
        assert!(m[3].abs() < 1e-12);
    }

    #[test]
    fn scaled_moments_degenerate_range() {
        let power_sums = [3.0, 15.0, 75.0]; // three copies of 5
        let m = scaled_power_moments(&power_sums, 5.0, 5.0);
        assert_eq!(m, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn chebyshev_moments_of_uniform_grid() {
        // For u uniform on [-1,1]: E[T_0]=1, E[T_1]=0, E[T_2]=E[2u²−1]=−1/3.
        let n = 100_001;
        let mut sums = vec![0.0; 5];
        for i in 0..n {
            let x = -1.0 + 2.0 * i as f64 / (n - 1) as f64;
            for (j, s) in sums.iter_mut().enumerate() {
                *s += x.powi(j as i32);
            }
        }
        let scaled = scaled_power_moments(&sums, -1.0, 1.0);
        let cheb = chebyshev_moments(&scaled);
        assert!((cheb[0] - 1.0).abs() < 1e-9);
        assert!(cheb[1].abs() < 1e-9);
        assert!((cheb[2] + 1.0 / 3.0).abs() < 1e-4);
        assert!(cheb[3].abs() < 1e-9);
    }
}

//! Small dense symmetric linear algebra for the Newton step.
//!
//! The Hessian of the max-entropy potential is a `(k+1)×(k+1)` symmetric
//! positive-definite matrix with `k ≤ 15` (the paper caps `num_moments` at
//! 15 for stability, §4.2), so a textbook Cholesky factorisation with a
//! diagonal-ridge fallback is both sufficient and dependency-free.

/// Row-major dense symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Write element `(i, j)` (callers maintain symmetry).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// In-place Cholesky factorisation `A = L·Lᵀ`; returns the lower
    /// factor, or `None` if the matrix is not positive-definite.
    fn cholesky(&self) -> Option<Vec<f64>> {
        let n = self.n;
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Some(l)
    }

    /// Solve `A·x = b` by Cholesky. If `A` is numerically indefinite, a
    /// growing diagonal ridge is added until the factorisation succeeds
    /// (standard damped-Newton practice). Returns `None` only if even a
    /// massive ridge fails (NaN/∞ inputs).
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        let mut ridge = 0.0;
        let base: f64 = (0..self.n)
            .map(|i| self.get(i, i).abs())
            .fold(0.0, f64::max)
            .max(1e-12);
        for _attempt in 0..24 {
            let mut a = self.clone();
            if ridge > 0.0 {
                for i in 0..self.n {
                    a.set(i, i, a.get(i, i) + ridge);
                }
            }
            if let Some(l) = a.cholesky() {
                return Some(cholesky_solve(&l, self.n, b));
            }
            ridge = if ridge == 0.0 { base * 1e-10 } else { ridge * 10.0 };
        }
        None
    }
}

/// Forward/back substitution with the lower factor `l`.
fn cholesky_solve(l: &[f64], n: usize, b: &[f64]) -> Vec<f64> {
    // L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    x
}

/// Euclidean norm.
pub fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut a = SymMatrix::zeros(3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = a.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_spd_system() {
        // A = [[4,2],[2,3]], b = [2,5] -> x = [-0.5, 2].
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let x = a.solve(&[2.0, 5.0]).unwrap();
        assert!((x[0] + 0.5).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_residual_small_on_random_spd() {
        // Build SPD as B·Bᵀ + I from a deterministic pseudo-random B.
        let n = 8;
        let mut b_mat = vec![0.0; n * n];
        let mut state = 0x12345u64;
        for v in &mut b_mat {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        }
        let mut a = SymMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += b_mat[i * n + k] * b_mat[j * n + k];
                }
                a.set(i, j, s);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = a.solve(&rhs).unwrap();
        for (i, &b_i) in rhs.iter().enumerate() {
            let ax: f64 = x.iter().enumerate().map(|(j, &xj)| a.get(i, j) * xj).sum();
            assert!((ax - b_i).abs() < 1e-9, "residual row {i}");
        }
    }

    #[test]
    fn indefinite_matrix_gets_ridge() {
        // Singular matrix: ridge fallback must still return something
        // finite.
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 1.0);
        let x = a.solve(&[1.0, 1.0]).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn norm_and_dot() {
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
    }
}

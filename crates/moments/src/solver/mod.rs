//! The maximum-entropy quantile solver behind the Moments sketch.
//!
//! Pipeline (§3.2, Fig. 2 of the paper):
//!
//! 1. scale the raw power sums onto `[-1, 1]` and convert them to
//!    Chebyshev-basis moments ([`chebyshev`]),
//! 2. fit the maximum-entropy density `f(x) = exp(Σ λᵢ Tᵢ(x))` whose
//!    Chebyshev moments match, by damped Newton iteration with a Cholesky
//!    linear solve ([`maxent`], [`linalg`]),
//! 3. integrate the fitted density into a CDF on a uniform grid and invert
//!    it at the queried ranks.

pub mod chebyshev;
pub mod linalg;
pub mod maxent;

pub use maxent::{MaxEntSolution, SolverConfig, SolverError};

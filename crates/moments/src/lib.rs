//! Moments sketch (§3.2 of the paper): a constant-size summary holding the
//! count, min, max, and the first `k` power sums of the stream, from which
//! quantiles are recovered by fitting the *maximum-entropy* distribution
//! whose moments match the summary (Gan et al., VLDB'18).
//!
//! The sketch itself is trivial — `insert` updates `k` running sums, and
//! `merge` adds two summaries element-wise, which is why the paper finds
//! its merge times an order of magnitude faster than every other sketch
//! (§4.4.3). All of the work happens at query time: the solver finds the
//! density `f(x) = exp(Σ λᵢ·Tᵢ(x))` (Chebyshev basis) matching the
//! observed moments by damped Newton iteration on a discretised grid, then
//! reads quantiles off the fitted CDF. This mirrors the authors'
//! `momentsketch` reference implementation, including the `arcsinh`
//! compression recommended for data spanning many orders of magnitude
//! (applied to the Pareto and Power data sets in §4.2).
//!
//! A minimum cardinality of 5 is required (§3.2) — with fewer points the
//! scaled moment system is degenerate and `query` reports
//! [`qsketch_core::QueryError::EstimationFailed`].
//!
//! # Example
//!
//! ```
//! use qsketch_moments::MomentsSketch;
//! use qsketch_core::QuantileSketch;
//!
//! let mut ms = MomentsSketch::new(12);
//! for i in 1..=10_000 {
//!     ms.insert(i as f64);
//! }
//! let est = ms.query(0.5).unwrap();
//! assert!((est - 5_000.0).abs() / 10_000.0 < 0.02);
//! ```

mod sketch;
pub mod solver;

pub use sketch::{MomentsSketch, WIRE_MAGIC};

/// The paper's `num_moments` (§4.2): 12 moments — "we experienced numerical
/// stability issues with anything more than 15 moments".
pub const PAPER_NUM_MOMENTS: usize = 12;

/// Grid resolution for the maximum-entropy solver (the reference
/// implementation's default grid size; §4.5.5 notes accuracy can be traded
/// against query time through this parameter).
pub const DEFAULT_GRID_SIZE: usize = 1024;

//! Streaming summary statistics, most importantly excess kurtosis (§2.3),
//! which the paper uses to order data sets by tail weight in Fig. 7.

/// One-pass accumulator for mean, variance, skewness, and excess kurtosis
/// using numerically stable central-moment updates (Welford/Pébay).
#[derive(Debug, Clone, Default)]
pub struct MomentsAccumulator {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl MomentsAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Consume one value.
    pub fn insert(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0)
            + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Consume many values.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.insert(v);
        }
    }

    /// Number of consumed values.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness `m3 / m2^{3/2}` (population form).
    pub fn skewness(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Excess kurtosis `m4·n / m2² − 3` (§2.3): the normal distribution
    /// scores 0, heavier tails score higher.
    pub fn excess_kurtosis(&self) -> f64 {
        if self.n == 0 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n * self.m4) / (self.m2 * self.m2) - 3.0
    }

    /// Smallest consumed value, `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest consumed value, `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Excess kurtosis of a full slice (§2.3) in one call.
pub fn kurtosis(data: &[f64]) -> f64 {
    let mut acc = MomentsAccumulator::new();
    acc.extend(data.iter().copied());
    acc.excess_kurtosis()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_neutral() {
        let acc = MomentsAccumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.excess_kurtosis(), 0.0);
        assert_eq!(acc.skewness(), 0.0);
    }

    #[test]
    fn mean_and_variance_basic() {
        let mut acc = MomentsAccumulator::new();
        acc.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.variance() - 4.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn uniform_data_has_negative_excess_kurtosis() {
        // A continuous uniform distribution has excess kurtosis -1.2 (§4.5.6
        // treats uniform as "kurtosis close to 0", i.e. no tail).
        let data: Vec<f64> = (0..100_000).map(|i| i as f64 / 100_000.0).collect();
        let k = kurtosis(&data);
        assert!((k + 1.2).abs() < 0.01, "uniform kurtosis {k}");
    }

    #[test]
    fn symmetric_two_point_mass() {
        // {-1, +1} repeated: kurtosis of a Bernoulli(+-1) is -2.
        let data: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert!((kurtosis(&data) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_tail_scores_higher_than_uniform() {
        // Deterministic Pareto-like tail via inverse transform of a uniform
        // grid: x = (1-u)^{-1/3} has a heavy right tail.
        let heavy: Vec<f64> = (0..50_000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 50_000.0;
                (1.0 - u).powf(-1.0 / 3.0)
            })
            .collect();
        let uniform: Vec<f64> = (0..50_000).map(|i| i as f64).collect();
        assert!(kurtosis(&heavy) > kurtosis(&uniform) + 1.0);
    }

    #[test]
    fn skewness_sign() {
        let right_skewed = [1.0, 1.0, 1.0, 1.0, 10.0];
        let mut acc = MomentsAccumulator::new();
        acc.extend(right_skewed);
        assert!(acc.skewness() > 0.0);
    }

    #[test]
    fn constant_data_degenerate() {
        let mut acc = MomentsAccumulator::new();
        acc.extend([5.0; 100]);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.excess_kurtosis(), 0.0);
    }
}

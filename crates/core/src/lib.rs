//! Common foundation for the quantile-sketch evaluation suite.
//!
//! This crate defines everything the individual sketch implementations and
//! the benchmark harness share:
//!
//! * the [`QuantileSketch`] and [`MergeableSketch`] traits every sketch
//!   implements,
//! * the error model of the paper — [`error::relative_error`] and
//!   [`error::rank_error`] (§2.2),
//! * an exact, sort-based quantile oracle ([`exact::ExactQuantiles`]) used as
//!   ground truth in every accuracy experiment,
//! * streaming statistics such as excess [`stats::kurtosis`] (§2.3),
//! * the quantile sets and groupings used throughout the paper's evaluation
//!   ([`quantiles`], §4.2),
//! * the versioned binary wire format ([`codec`]): the
//!   [`SketchSerialize`] trait every sketch implements (magic + version +
//!   params + state, little-endian), with typed [`DecodeError`] rejection
//!   of corrupt/foreign payloads — the basis of distributed merge and of
//!   the sharded engine's checkpoint/recovery,
//! * the v3 flatwire layout ([`flatwire`]): delta + prefix-varint
//!   compressed payloads and the [`flatwire::SketchView`] trait that
//!   answers quantile queries directly from serialized bytes with no
//!   decode step (FORMATS.md is the normative spec),
//! * a zero-dependency observability layer ([`metrics`]): named counters,
//!   gauges, and log-bucketed latency histograms, plus the
//!   [`metrics::Instrumented`] wrapper that records per-operation metrics
//!   for any sketch without modifying it.
//!
//! # Example
//!
//! ```
//! use qsketch_core::exact::ExactQuantiles;
//! use qsketch_core::error::relative_error;
//!
//! // Table 1 of the paper.
//! let data = [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0];
//! let mut oracle = ExactQuantiles::new();
//! oracle.extend(data);
//! assert_eq!(oracle.query(0.9).unwrap(), 30.0);
//! // The paper's worked example: estimating 18 for the 0.9-quantile is a
//! // 40% relative error.
//! assert!((relative_error(30.0, 18.0) - 0.4).abs() < 1e-12);
//! ```

#![deny(missing_docs)]

pub mod alloccount;
pub mod codec;
pub mod error;
pub mod exact;
pub mod fastlog;
pub mod flatwire;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod quantiles;
pub mod rank;
pub mod rng;
pub mod sketch;
pub mod stats;

pub use codec::{DecodeError, SketchSerialize};
pub use error::{rank_error, relative_error};
pub use flatwire::SketchView;
pub use fastlog::FastCeilIndexer;
pub use exact::ExactQuantiles;
pub use metrics::{Instrumented, MetricsRegistry, MetricsSnapshot};
pub use pool::{BufferPool, Pooled, Recycle};
pub use profile::Profile;
pub use sketch::{
    merge_tree, merge_tree_counted, MergeError, MergeableSketch, QuantileSketch, QueryError,
    SketchError, SketchFactory,
};

//! Minimal deterministic PRNG for compaction coin flips.
//!
//! The sampling sketches (KLL, ReqSketch) only need unbiased coin flips; a tiny xorshift64*
//! generator keeps the sketches dependency-free and reproducible under a
//! fixed seed (every accuracy experiment in the harness is seeded).

/// xorshift64* generator. Never yields the all-zero state.
#[derive(Debug, Clone)]
pub struct CoinFlipper {
    state: u64,
}

impl CoinFlipper {
    /// Seed the generator; a zero seed is remapped to a fixed odd constant
    /// because xorshift requires non-zero state.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// The current generator state — serialized by the sketch wire
    /// formats (KLL/REQ v2) so a checkpointed-and-recovered sketch
    /// replays the *same* future coin flips as the uninterrupted run.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at an exact state captured by [`Self::state`]
    /// (zero, impossible for a live xorshift, is remapped as in `new`).
    pub fn from_state(state: u64) -> Self {
        Self::new(state)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// An unbiased coin flip.
    pub fn flip(&mut self) -> bool {
        // Use the high bit: low bits of xorshift* are weaker.
        self.next_u64() >> 63 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = CoinFlipper::new(42);
        let mut b = CoinFlipper::new(42);
        for _ in 0..1000 {
            assert_eq!(a.flip(), b.flip());
        }
    }

    #[test]
    fn roughly_unbiased() {
        let mut rng = CoinFlipper::new(7);
        let heads = (0..100_000).filter(|_| rng.flip()).count();
        assert!((45_000..55_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn state_round_trip_replays_identically() {
        let mut a = CoinFlipper::new(42);
        for _ in 0..100 {
            a.flip();
        }
        let mut b = CoinFlipper::from_state(a.state());
        for _ in 0..1000 {
            assert_eq!(a.flip(), b.flip());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut rng = CoinFlipper::new(0);
        // Must not get stuck at zero.
        let flips: Vec<bool> = (0..64).map(|_| rng.flip()).collect();
        assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
    }
}

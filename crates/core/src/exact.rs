//! Exact quantile oracle used as ground truth in every accuracy experiment.
//!
//! Unlike the sketches, the oracle stores the entire stream; it exists only
//! so that measured errors are against the *true* per-window quantile, the
//! same methodology the paper uses inside its Flink jobs.

use crate::rank::{inverse_quantile, quantile_of, rank_of};
use crate::sketch::{check_quantile, QuantileSketch, QueryError};

/// Stores all observed values and answers exact quantile queries by sorting
/// lazily on first query.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    values: Vec<f64>,
    sorted: bool,
}

impl ExactQuantiles {
    /// Create an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an oracle with pre-reserved capacity for `n` values.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            values: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Insert one value.
    pub fn insert(&mut self, value: f64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Insert many values.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        self.values.extend(values);
        self.sorted = false;
    }

    /// Number of stored values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no values are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in data stream"));
            self.sorted = true;
        }
    }

    /// Exact `q`-quantile (rank `⌈qN⌉`, §2.1). Requires `0 < q ≤ 1`.
    pub fn query(&mut self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.values.is_empty() {
            return Err(QueryError::Empty);
        }
        self.ensure_sorted();
        Ok(quantile_of(&self.values, q))
    }

    /// Exact rank of `x` (number of stored elements ≤ x).
    pub fn rank(&mut self, x: f64) -> usize {
        self.ensure_sorted();
        rank_of(&self.values, x)
    }

    /// `Quantile⁻¹(x) = Rank(x)/N`.
    pub fn inverse_quantile(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        inverse_quantile(&self.values, x)
    }

    /// Borrow the sorted data (sorting first if necessary).
    pub fn sorted_values(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }
}

/// The oracle also implements [`QuantileSketch`] so it can run through the
/// same harness code paths as the real sketches (e.g. as the "exact"
/// baseline column of an experiment). Queries require interior sorting, so
/// the trait implementation keeps a sorted copy up to date eagerly on
/// `query`.
#[derive(Debug, Clone, Default)]
pub struct ExactSketch {
    inner: ExactQuantiles,
}

impl ExactSketch {
    /// Create an empty exact "sketch".
    pub fn new() -> Self {
        Self::default()
    }
}

impl QuantileSketch for ExactSketch {
    fn insert(&mut self, value: f64) {
        self.inner.insert(value);
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        check_quantile(q)?;
        if self.inner.is_empty() {
            return Err(QueryError::Empty);
        }
        // The trait takes &self; clone-and-sort keeps the API uniform. This
        // type is a test/ground-truth vehicle, not a performance subject.
        let mut sorted: Vec<f64> = self.inner.values.clone();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in data stream"));
        Ok(quantile_of(&sorted, q))
    }

    fn count(&self) -> u64 {
        self.inner.count() as u64
    }

    fn memory_footprint(&self) -> usize {
        self.inner.values.len() * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "Exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_on_table1() {
        let mut o = ExactQuantiles::new();
        o.extend([3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0]);
        assert_eq!(o.query(0.1).unwrap(), 3.0);
        assert_eq!(o.query(0.5).unwrap(), 11.0);
        assert_eq!(o.query(0.9).unwrap(), 30.0);
        assert_eq!(o.query(1.0).unwrap(), 51.0);
    }

    #[test]
    fn oracle_empty_query_errors() {
        let mut o = ExactQuantiles::new();
        assert_eq!(o.query(0.5), Err(QueryError::Empty));
    }

    #[test]
    fn oracle_invalid_quantile_errors() {
        let mut o = ExactQuantiles::new();
        o.insert(1.0);
        assert_eq!(o.query(0.0), Err(QueryError::InvalidQuantile));
        assert_eq!(o.query(1.5), Err(QueryError::InvalidQuantile));
    }

    #[test]
    fn oracle_interleaved_inserts_and_queries() {
        let mut o = ExactQuantiles::new();
        o.extend([5.0, 1.0, 3.0]);
        assert_eq!(o.query(0.5).unwrap(), 3.0);
        o.insert(0.5);
        o.insert(10.0);
        assert_eq!(o.query(1.0).unwrap(), 10.0);
        assert_eq!(o.query(0.2).unwrap(), 0.5);
    }

    #[test]
    fn exact_sketch_trait_roundtrip() {
        let mut s = ExactSketch::new();
        assert!(s.is_empty());
        for v in [2.0, 4.0, 6.0, 8.0] {
            s.insert(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.query(0.5).unwrap(), 4.0);
        assert_eq!(s.query(1.0).unwrap(), 8.0);
        assert_eq!(s.name(), "Exact");
        assert_eq!(s.memory_footprint(), 4 * 8);
    }

    #[test]
    fn oracle_rank_and_inverse() {
        let mut o = ExactQuantiles::new();
        o.extend([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(o.rank(25.0), 2);
        assert!((o.inverse_quantile(20.0) - 0.5).abs() < 1e-12);
    }
}

//! A counting wrapper around the system allocator, for *proving*
//! zero-allocation claims instead of asserting them in prose.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` in a test
//! binary, then read [`thread_allocs`] before and after the code under
//! test: the delta is the exact number of heap allocations the current
//! thread performed. The repo's `alloc_gate` integration test uses this
//! to gate the server data plane at **0 allocations per ingest frame**
//! after warmup.
//!
//! ```ignore
//! use qsketch_core::alloccount::{self, CountingAlloc};
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc;
//!
//! let before = alloccount::thread_allocs();
//! hot_path();
//! assert_eq!(alloccount::thread_allocs() - before, 0);
//! ```
//!
//! The counters are always linked but only move when `CountingAlloc`
//! is actually installed; in a binary using the default allocator every
//! reader below returns 0. Counting is a pair of relaxed atomic /
//! thread-local increments per allocation — cheap enough to leave on in
//! benchmarks, which is how `ext_server_load` reports its
//! `allocs_per_frame` column.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized and Drop-free: safe to touch from inside the
    // allocator without recursing through lazy TLS initialization.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn record(bytes: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

/// A `#[global_allocator]` that forwards to [`System`] and counts every
/// allocation (including reallocations; frees are not counted).
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the bookkeeping never calls
// back into the allocator (relaxed atomics + a const-init, Drop-free
// thread-local).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Heap allocations performed by *this thread* since it started
/// (0 unless [`CountingAlloc`] is the global allocator).
pub fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

/// Heap allocations performed by the whole process since start
/// (0 unless [`CountingAlloc`] is the global allocator).
pub fn total_allocs() -> u64 {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// Bytes requested from the allocator by the whole process since start
/// (0 unless [`CountingAlloc`] is the global allocator).
pub fn total_bytes() -> u64 {
    TOTAL_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The unit-test binary does not install CountingAlloc (only the
    // dedicated alloc_gate integration test does), so here we can only
    // check that the readers are callable and monotone.
    use super::*;

    #[test]
    fn readers_are_callable_and_monotone() {
        let t0 = thread_allocs();
        let g0 = total_allocs();
        let b0 = total_bytes();
        let _v: Vec<u8> = Vec::with_capacity(128);
        assert!(thread_allocs() >= t0);
        assert!(total_allocs() >= g0);
        assert!(total_bytes() >= b0);
    }
}

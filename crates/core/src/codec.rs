//! Compact binary wire format for sketches.
//!
//! Mergeability (§2.4) is only useful in a distributed setting if the
//! sketch can travel: "the partitioned data can be summarized locally so
//! that only the sketch summaries need to be merged across different
//! machines". This module provides the shared encoding primitives every
//! sketch's `encode`/`decode` pair is built from: little-endian scalars,
//! LEB128 varints for counts, and a header with a per-sketch magic byte
//! (the sketch *tag* on the wire) and format version so decoding a
//! foreign or stale payload fails loudly instead of corrupting state.
//!
//! Every payload therefore reads `magic, version, params…, state…`, and
//! [`SketchSerialize::decode`] rejects corrupt, truncated, or
//! foreign-version input with a typed [`DecodeError`] — never a panic.
//! The same payloads are what the sharded ingestion engine persists as
//! per-shard checkpoints (`qsketch_streamsim::checkpoint`).

use std::fmt;

/// Errors produced when decoding a sketch payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The payload ended before the declared content.
    UnexpectedEnd,
    /// Magic byte did not match the expected sketch type.
    WrongMagic {
        /// Magic expected by the decoder.
        expected: u8,
        /// Magic found in the payload.
        found: u8,
    },
    /// Format version not understood by this build.
    UnsupportedVersion(u8),
    /// A decoded field violated an invariant (e.g. NaN min, count
    /// mismatch).
    Corrupt(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "payload truncated"),
            DecodeError::WrongMagic { expected, found } => {
                write!(f, "wrong sketch magic: expected {expected:#x}, found {found:#x}")
            }
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A sketch that can round-trip through a compact byte representation:
/// the serialization face of every sketch in the suite (and of the
/// type-erased `AnySketch` in the bench harness).
///
/// Implementations encode `magic + version + params + state` via
/// [`Writer`]/[`Reader`] and must uphold two contracts:
///
/// * **round-trip fidelity** — a decoded sketch answers every
///   [`query`](crate::sketch::QuantileSketch::query) bit-identically to
///   the encoder, and keeps accepting inserts/merges;
/// * **no panics on hostile bytes** — `decode` returns a
///   [`DecodeError`] for corrupt, truncated, or foreign payloads.
pub trait SketchSerialize: Sized {
    /// Serialise to bytes.
    fn encode(&self) -> Vec<u8>;
    /// Deserialise, validating magic/version/invariants.
    fn decode(bytes: &[u8]) -> Result<Self, DecodeError>;
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a payload with the sketch's magic byte and format version.
    pub fn with_header(magic: u8, version: u8) -> Self {
        let mut w = Self { buf: Vec::with_capacity(64) };
        w.buf.push(magic);
        w.buf.push(version);
        w
    }

    /// Finish and take the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Resume writing at the end of an existing buffer (no header is
    /// written). This is how reusable encode buffers avoid a fresh
    /// allocation per payload: `mem::take` the buffer in, append, and
    /// [`finish`](Self::finish) it back out.
    pub fn over(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Write one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a LEB128 varint (space-efficient for counts and lengths).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self, values: &[f64]) {
        self.varint(values.len() as u64);
        for &v in values {
            self.f64(v);
        }
    }

    /// Write a length-prefixed byte string (a nested payload — e.g. a
    /// sketch payload inside a checkpoint or type-erased envelope).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append raw bytes with no length prefix (for envelopes whose inner
    /// payload runs to the end of the buffer).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor-based decoder.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    version: u8,
}

impl<'a> Reader<'a> {
    /// Wrap a payload and validate its `(magic, version)` header against
    /// the expectations; returns the reader positioned after the header.
    pub fn with_header(bytes: &'a [u8], magic: u8, max_version: u8) -> Result<Self, DecodeError> {
        let mut r = Self {
            bytes,
            pos: 0,
            version: 0,
        };
        let found = r.u8()?;
        if found != magic {
            return Err(DecodeError::WrongMagic {
                expected: magic,
                found,
            });
        }
        let version = r.u8()?;
        if version == 0 || version > max_version {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        r.version = version;
        Ok(r)
    }

    /// The format version the header declared — decoders branch on this
    /// to read older payload layouts (e.g. KLL v1 lacks the RNG state
    /// that v2 appends).
    pub fn version(&self) -> u8 {
        self.version
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(DecodeError::Corrupt("varint overflow".into()));
            }
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed `f64` vector; `max_len` bounds allocation
    /// against hostile payloads.
    pub fn f64_vec(&mut self, max_len: u64) -> Result<Vec<f64>, DecodeError> {
        let len = self.varint()?;
        if len > max_len {
            return Err(DecodeError::Corrupt(format!(
                "declared length {len} exceeds limit {max_len}"
            )));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed byte string (the inverse of
    /// [`Writer::bytes`]); `max_len` bounds allocation against hostile
    /// payloads.
    pub fn byte_vec(&mut self, max_len: u64) -> Result<Vec<u8>, DecodeError> {
        Ok(self.byte_slice(max_len)?.to_vec())
    }

    /// Borrowed form of [`byte_vec`](Self::byte_vec): the same
    /// length-prefixed byte string, returned as a slice of the payload
    /// with no copy and no allocation.
    pub fn byte_slice(&mut self, max_len: u64) -> Result<&'a [u8], DecodeError> {
        let len = self.varint()?;
        if len > max_len {
            return Err(DecodeError::Corrupt(format!(
                "declared length {len} exceeds limit {max_len}"
            )));
        }
        self.take(len as usize)
    }

    /// Borrowed form of [`f64_vec`](Self::f64_vec): reads the same
    /// length-prefixed `f64` run but returns the raw little-endian
    /// bytes (8 per value) without decoding or allocating. `max_len`
    /// bounds the declared *value count*.
    pub fn f64_le_slice(&mut self, max_len: u64) -> Result<&'a [u8], DecodeError> {
        let len = self.varint()?;
        if len > max_len {
            return Err(DecodeError::Corrupt(format!(
                "declared length {len} exceeds limit {max_len}"
            )));
        }
        self.take(len as usize * std::mem::size_of::<f64>())
    }

    /// The unread remainder of the payload (the inner payload of an
    /// envelope written with [`Writer::raw`]). Consumes the rest.
    pub fn rest(&mut self) -> &'a [u8] {
        let out = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        out
    }

    /// True once the whole payload was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Fail unless the payload was fully consumed (catches mismatched
    /// encoders/decoders early).
    pub fn expect_exhausted(&self) -> Result<(), DecodeError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DecodeError::Corrupt(format!(
                "{} trailing bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::with_header(0xAB, 1);
        w.u64(123456789);
        w.i32(-42);
        w.f64(3.25);
        w.u8(7);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 0xAB, 1).unwrap();
        assert_eq!(r.u64().unwrap(), 123456789);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.25);
        assert_eq!(r.u8().unwrap(), 7);
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX];
        let mut w = Writer::with_header(1, 1);
        for &v in &values {
            w.varint(v);
        }
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 1, 1).unwrap();
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_compactness() {
        let mut w = Writer::with_header(1, 1);
        w.varint(5);
        assert_eq!(w.finish().len(), 3); // header + 1 byte
    }

    #[test]
    fn slice_round_trip() {
        let mut w = Writer::with_header(2, 1);
        w.f64_slice(&[1.5, -2.5, 0.0]);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 2, 1).unwrap();
        assert_eq!(r.f64_vec(100).unwrap(), vec![1.5, -2.5, 0.0]);
    }

    #[test]
    fn wrong_magic_rejected() {
        let bytes = Writer::with_header(0x10, 1).finish();
        let err = Reader::with_header(&bytes, 0x20, 1).unwrap_err();
        assert!(matches!(err, DecodeError::WrongMagic { .. }));
    }

    #[test]
    fn future_version_rejected() {
        let bytes = Writer::with_header(0x10, 9).finish();
        let err = Reader::with_header(&bytes, 0x10, 1).unwrap_err();
        assert_eq!(err, DecodeError::UnsupportedVersion(9));
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::with_header(0x10, 1);
        w.u64(42);
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() - 2);
        let mut r = Reader::with_header(&bytes, 0x10, 1).unwrap();
        assert_eq!(r.u64().unwrap_err(), DecodeError::UnexpectedEnd);
    }

    #[test]
    fn hostile_length_bounded() {
        let mut w = Writer::with_header(0x10, 1);
        w.varint(u64::MAX);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 0x10, 1).unwrap();
        assert!(matches!(r.f64_vec(1024), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn byte_string_round_trip() {
        let mut w = Writer::with_header(0x10, 1);
        w.bytes(&[1, 2, 3]);
        w.bytes(&[]);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 0x10, 1).unwrap();
        assert_eq!(r.byte_vec(16).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.byte_vec(16).unwrap(), Vec::<u8>::new());
        r.expect_exhausted().unwrap();
    }

    #[test]
    fn byte_string_hostile_length_bounded() {
        let mut w = Writer::with_header(0x10, 1);
        w.varint(u64::MAX);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 0x10, 1).unwrap();
        assert!(matches!(r.byte_vec(1024), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn raw_and_rest_round_trip_an_envelope() {
        let mut inner = Writer::with_header(0x42, 1);
        inner.u64(7);
        let inner_bytes = inner.finish();
        let mut outer = Writer::with_header(0x99, 1);
        outer.u8(3); // tag
        outer.raw(&inner_bytes);
        let bytes = outer.finish();
        let mut r = Reader::with_header(&bytes, 0x99, 1).unwrap();
        assert_eq!(r.u8().unwrap(), 3);
        assert_eq!(r.rest(), inner_bytes.as_slice());
        assert!(r.is_exhausted());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::with_header(0x10, 1);
        w.u8(1);
        w.u8(2);
        let bytes = w.finish();
        let mut r = Reader::with_header(&bytes, 0x10, 1).unwrap();
        let _ = r.u8().unwrap();
        assert!(r.expect_exhausted().is_err());
    }
}

//! Zero-dependency observability for the sketch pipeline.
//!
//! Everything here is built on `std` only — atomics, `Arc`, and a
//! `BTreeMap` behind a mutex — so the instrumentation can ride along in
//! the offline build environment and inside benchmark hot loops without
//! pulling in a metrics framework.
//!
//! Three primitives, all cheaply cloneable handles onto shared state:
//!
//! * [`Counter`] — a monotonically increasing `u64` (events processed,
//!   late records dropped, merges performed).
//! * [`Gauge`] — a last-write-wins `u64` (current memory footprint,
//!   current watermark).
//! * [`LogHistogram`] — a log-bucketed histogram over the full `u64`
//!   range, for nanosecond latencies. Buckets follow the HDR-histogram
//!   half-octave layout (the same idiom as
//!   `qsketch_baselines::hdr`): each doubling of magnitude gets
//!   `2^sig_bits` linear sub-buckets, bounding relative error per bucket
//!   at `2^-sig_bits` while covering 0..=`u64::MAX` in a few KiB.
//!
//! A [`MetricsRegistry`] names and owns the metrics and renders
//! point-in-time [`MetricsSnapshot`]s as aligned plain text or JSON
//! (hand-rolled — no serde).
//!
//! [`Instrumented`] wraps any [`QuantileSketch`] and records per-operation
//! counts and latencies into a registry without touching the sketch crates
//! themselves. Insert timing is *sampled* (default: 1 in 1024) so the
//! wrapper stays within a few percent of the bare sketch even for
//! sketches whose insert is a handful of nanoseconds.
//!
//! # Example
//!
//! Wrap any [`QuantileSketch`] — here a trivial one that retains every
//! value — and read its operation counts back out of the registry:
//!
//! ```
//! use qsketch_core::metrics::{Instrumented, MetricsRegistry};
//! use qsketch_core::sketch::{check_quantile, QuantileSketch, QueryError};
//!
//! #[derive(Default)]
//! struct KeepAll(Vec<f64>);
//! impl QuantileSketch for KeepAll {
//!     fn insert(&mut self, v: f64) { self.0.push(v); }
//!     fn query(&self, q: f64) -> Result<f64, QueryError> {
//!         check_quantile(q)?;
//!         let mut s = self.0.clone();
//!         s.sort_by(|a, b| a.partial_cmp(b).unwrap());
//!         s.get(((q * s.len() as f64).ceil() as usize).saturating_sub(1))
//!             .copied()
//!             .ok_or(QueryError::Empty)
//!     }
//!     fn count(&self) -> u64 { self.0.len() as u64 }
//!     fn memory_footprint(&self) -> usize { self.0.len() * 8 }
//!     fn name(&self) -> &'static str { "keep-all" }
//! }
//!
//! let registry = MetricsRegistry::new();
//! let mut sketch = Instrumented::new(KeepAll::default(), &registry, "demo");
//! for i in 0..10_000 {
//!     sketch.insert(i as f64);
//! }
//! let _median = sketch.query(0.5).unwrap();
//! sketch.flush();
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.inserts"), Some(10_000));
//! assert_eq!(snap.counter("demo.queries"), Some(1));
//! println!("{}", snap.render_text());
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::sketch::{MergeError, MergeableSketch, QuantileSketch, QueryError};

/// A monotonically increasing event count.
///
/// Cloning shares the underlying value; increments use relaxed atomics,
/// so counters are safe to bump from worker threads.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh, unregistered counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh, unregistered gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is larger than the current one.
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-bucket precision of a [`LogHistogram`]: `2^5 = 32` sub-buckets per
/// half-octave, i.e. ≤ 3.2 % relative error per bucket — plenty for
/// latency percentiles — at 1 920 slots (15 KiB).
pub const DEFAULT_HISTOGRAM_SIG_BITS: u32 = 5;

#[derive(Debug)]
struct HistogramShared {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    /// Stored as the raw value; `u64::MAX` means "nothing recorded yet".
    min: AtomicU64,
    max: AtomicU64,
}

/// A log-bucketed histogram covering all of `0..=u64::MAX`.
///
/// Uses the HDR half-octave layout (see `qsketch_baselines::hdr` for the
/// sketch-sized variant): values below `2^(sig_bits+1)` are exact; beyond
/// that, each power of two is split into `2^sig_bits` linear sub-buckets,
/// so any recorded value is reported within a `2^-sig_bits` relative
/// error. Unlike the baseline HDR sketch there is no `highest_trackable`:
/// the slot table spans the whole 64-bit range up front, which at the
/// default precision costs 15 KiB — acceptable for a process-wide metric,
/// unthinkable for a per-window sketch.
///
/// Recording is a relaxed atomic increment; handles are cheap clones.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    sig_bits: u32,
    /// `2^sig_bits`, sub-buckets per half-octave.
    half: u64,
    shared: Arc<HistogramShared>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_HISTOGRAM_SIG_BITS)
    }
}

impl LogHistogram {
    /// A histogram with `2^sig_bits` sub-buckets per half-octave
    /// (relative error ≤ `2^-sig_bits`). `sig_bits` must lie in `1..=14`.
    pub fn new(sig_bits: u32) -> Self {
        assert!(
            (1..=14).contains(&sig_bits),
            "sig_bits must lie in 1..=14, got {sig_bits}"
        );
        let half = 1u64 << sig_bits;
        // Bucket index for u64::MAX is 63 - sig_bits, so slots run to
        // (64 - sig_bits)*half + half = (65 - sig_bits)*half.
        let slots = ((65 - sig_bits) as u64 * half) as usize;
        let counts = (0..slots).map(|_| AtomicU64::new(0)).collect();
        Self {
            sig_bits,
            half,
            shared: Arc::new(HistogramShared {
                counts,
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Guaranteed per-bucket relative error: `2^-sig_bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / self.half as f64
    }

    /// Number of allocated count slots.
    pub fn allocated_slots(&self) -> usize {
        self.shared.counts.len()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &*self.shared;
        s.counts[self.slot_for(v)].fetch_add(1, Ordering::Relaxed);
        s.total.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.shared.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.shared.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum() as f64 / n as f64)
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.shared.min.load(Ordering::Relaxed))
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.shared.max.load(Ordering::Relaxed))
    }

    /// Approximate `q`-quantile of the recorded values (`q ∈ (0, 1]`,
    /// validated by the shared
    /// [`check_quantile`](crate::sketch::check_quantile) helper): the
    /// midpoint of the bucket holding the rank-`⌈qN⌉` observation,
    /// clamped into the recorded min/max. `None` when empty or out of
    /// range.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 || crate::sketch::check_quantile(q).is_err() {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        if rank == total {
            // The top observation's value is tracked exactly.
            return self.max();
        }
        let mut cum = 0u64;
        for (slot, c) in self.shared.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                let mid = self.midpoint_for(slot);
                let lo = self.shared.min.load(Ordering::Relaxed);
                let hi = self.shared.max.load(Ordering::Relaxed);
                return Some(mid.clamp(lo, hi));
            }
        }
        self.max()
    }

    /// Slot index for a value (the HDR `countsArrayIndex` over 64 bits:
    /// bucket from the leading-zero count, sub-bucket from a shift).
    #[inline]
    fn slot_for(&self, v: u64) -> usize {
        let mask = self.half * 2 - 1;
        let leading_zero_count_base = 64 - self.sig_bits - 1;
        let bucket = leading_zero_count_base - (v | mask).leading_zeros();
        let sub = v >> bucket;
        ((u64::from(bucket) + 1) * self.half + sub - self.half) as usize
    }

    /// Lowest value a slot covers (saturating at `u64::MAX` for the
    /// hypothetical slot one past the end).
    fn value_for(&self, slot: usize) -> u64 {
        let slot = slot as u64;
        let bucket = slot / self.half;
        let sub = slot % self.half + self.half;
        if bucket == 0 {
            sub - self.half
        } else {
            let shifted = (u128::from(sub)) << (bucket - 1);
            u64::try_from(shifted).unwrap_or(u64::MAX)
        }
    }

    /// Midpoint estimate for a slot: the centre of its value range.
    fn midpoint_for(&self, slot: usize) -> u64 {
        let lo = self.value_for(slot);
        let next = self.value_for(slot + 1).max(lo + 1);
        lo + (next - 1 - lo) / 2
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(LogHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of [`Counter`]s, [`Gauge`]s, and [`LogHistogram`]s.
///
/// The registry is a cheap clone-to-share handle: every clone sees the
/// same metrics. Lookup takes a mutex, so fetch handles once (outside hot
/// loops) and bump the returned handles lock-free.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()));
        match entry {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()));
        match entry {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering one at the default
    /// precision on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> LogHistogram {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(LogHistogram::default()));
        match entry {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time copy of every registered metric's value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(HistogramSummary {
                        count: h.count(),
                        mean: h.mean().unwrap_or(0.0),
                        min: h.min().unwrap_or(0),
                        p50: h.value_at_quantile(0.5).unwrap_or(0),
                        p90: h.value_at_quantile(0.9).unwrap_or(0),
                        p99: h.value_at_quantile(0.99).unwrap_or(0),
                        max: h.max().unwrap_or(0),
                    }),
                };
                SnapshotEntry {
                    name: name.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// Summary statistics of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean recorded value (0 when empty).
    pub mean: f64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Median (bucket-midpoint estimate).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

/// The captured value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(u64),
    /// A histogram's summary statistics.
    Histogram(HistogramSummary),
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Registered metric name.
    pub name: String,
    /// Captured value.
    pub value: SnapshotValue,
}

/// A point-in-time view of a [`MetricsRegistry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All captured metrics, name-sorted.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Counter(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Gauge(v) if e.name == name => Some(*v),
            _ => None,
        })
    }

    /// Summary of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.entries.iter().find_map(|e| match &e.value {
            SnapshotValue::Histogram(h) if e.name == name => Some(h),
            _ => None,
        })
    }

    /// Render as aligned plain text, one metric per line.
    pub fn render_text(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("{:<width$}  counter    {v}\n", e.name));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("{:<width$}  gauge      {v}\n", e.name));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<width$}  histogram  count={} mean={:.1} min={} p50={} p90={} p99={} max={}\n",
                        e.name, h.count, h.mean, h.min, h.p50, h.p90, h.p99, h.max
                    ));
                }
            }
        }
        out
    }

    /// Render as a JSON object `{"metrics": [...]}` (hand-rolled; metric
    /// names are escaped, numbers emitted verbatim).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &e.name);
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!(",\"kind\":\"counter\",\"value\":{v}}}"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!(",\"kind\":\"gauge\",\"value\":{v}}}"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        ",\"kind\":\"histogram\",\"count\":{},\"mean\":{},\"min\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                        h.count,
                        json_f64(h.mean),
                        h.min,
                        h.p50,
                        h.p90,
                        h.p99,
                        h.max
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Timing sample period of [`Instrumented`] inserts: 1 in 1024.
///
/// Inserts are counted exactly but *timed* only this often, keeping the
/// `Instant::now()` pair (≈ 30–50 ns) off 1023 of every 1024 inserts —
/// that is what holds the wrapper's overhead within the few-percent
/// budget for sketches whose insert is itself only a few nanoseconds.
pub const DEFAULT_INSERT_SAMPLE_PERIOD: u64 = 1024;

/// Per-sketch metric handles used by [`Instrumented`].
#[derive(Debug, Clone)]
struct SketchMetrics {
    inserts: Counter,
    insert_ns: LogHistogram,
    queries: Counter,
    query_ns: LogHistogram,
    query_errors: Counter,
    merges: Counter,
    merge_ns: LogHistogram,
    memory_bytes: Gauge,
}

impl SketchMetrics {
    fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        let name = |metric: &str| format!("{prefix}.{metric}");
        Self {
            inserts: registry.counter(&name("inserts")),
            insert_ns: registry.histogram(&name("insert_ns")),
            queries: registry.counter(&name("queries")),
            query_ns: registry.histogram(&name("query_ns")),
            query_errors: registry.counter(&name("query_errors")),
            merges: registry.counter(&name("merges")),
            merge_ns: registry.histogram(&name("merge_ns")),
            memory_bytes: registry.gauge(&name("memory_bytes")),
        }
    }
}

/// A [`QuantileSketch`] wrapper that records operation metrics into a
/// [`MetricsRegistry`] — no changes to the wrapped sketch required.
///
/// Registered under a caller-chosen prefix, the wrapper maintains:
///
/// | metric | kind | meaning |
/// |---|---|---|
/// | `<prefix>.inserts` | counter | values inserted |
/// | `<prefix>.insert_ns` | histogram | sampled insert latency |
/// | `<prefix>.queries` | counter | quantile queries (single or batch) |
/// | `<prefix>.query_ns` | histogram | per-query-call latency |
/// | `<prefix>.query_errors` | counter | queries that returned an error |
/// | `<prefix>.merges` | counter | merges absorbed |
/// | `<prefix>.merge_ns` | histogram | per-merge latency |
/// | `<prefix>.memory_bytes` | gauge | sketch footprint at last update |
///
/// Insert counts are buffered locally and flushed to the shared counter
/// on each timing sample (and on [`flush`](Instrumented::flush) / drop),
/// so the counter may lag the true count by up to the sample period
/// between flushes. Queries and merges are rare and expensive, so they
/// are counted and timed on every call.
///
/// Two instances given the same registry and prefix share metrics — their
/// counts aggregate, which is exactly what a partitioned pipeline wants.
#[derive(Debug)]
pub struct Instrumented<S> {
    inner: S,
    metrics: SketchMetrics,
    /// Total inserts seen by this wrapper (drives sampling); the hot
    /// path bumps only this, so the wrapper adds one increment and one
    /// branch per insert.
    ticks: u64,
    /// Value of `ticks` at the last flush; the difference is what still
    /// needs pushing to the shared counter.
    flushed_ticks: u64,
    /// `sample_period - 1`; the period is a power of two.
    sample_mask: u64,
}

impl<S: QuantileSketch> Instrumented<S> {
    /// Wrap `inner`, registering its metrics under `prefix` in `registry`.
    pub fn new(inner: S, registry: &MetricsRegistry, prefix: &str) -> Self {
        let this = Self {
            metrics: SketchMetrics::register(registry, prefix),
            inner,
            ticks: 0,
            flushed_ticks: 0,
            sample_mask: DEFAULT_INSERT_SAMPLE_PERIOD - 1,
        };
        this.metrics
            .memory_bytes
            .set(this.inner.memory_footprint() as u64);
        this
    }

    /// Change how often inserts are timed (rounded up to a power of two;
    /// `1` times every insert). Counts stay exact regardless.
    pub fn with_insert_sample_period(mut self, period: u64) -> Self {
        self.sample_mask = period.max(1).next_power_of_two() - 1;
        self
    }

    /// Push buffered insert counts to the shared counter and refresh the
    /// memory gauge. Called automatically on drop.
    pub fn flush(&mut self) {
        let pending = self.ticks.wrapping_sub(self.flushed_ticks);
        if pending > 0 {
            self.metrics.inserts.add(pending);
            self.flushed_ticks = self.ticks;
        }
        self.metrics
            .memory_bytes
            .set(self.inner.memory_footprint() as u64);
    }

    /// The wrapped sketch.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Flush pending metrics and unwrap the sketch.
    pub fn into_inner(mut self) -> S
    where
        S: Clone,
    {
        self.flush();
        self.inner.clone()
    }
}

impl<S> Drop for Instrumented<S> {
    fn drop(&mut self) {
        let pending = self.ticks.wrapping_sub(self.flushed_ticks);
        if pending > 0 {
            self.metrics.inserts.add(pending);
            self.flushed_ticks = self.ticks;
        }
    }
}

impl<S: QuantileSketch> QuantileSketch for Instrumented<S> {
    #[inline]
    fn insert(&mut self, value: f64) {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & self.sample_mask == 0 {
            let start = Instant::now();
            self.inner.insert(value);
            self.metrics
                .insert_ns
                .record(start.elapsed().as_nanos() as u64);
            self.flush();
        } else {
            self.inner.insert(value);
        }
    }

    fn insert_n(&mut self, value: f64, count: u64) {
        self.ticks = self.ticks.wrapping_add(count);
        self.inner.insert_n(value, count);
        self.flush();
    }

    fn insert_batch(&mut self, values: &[f64]) {
        if values.is_empty() {
            return;
        }
        self.ticks = self.ticks.wrapping_add(values.len() as u64);
        let start = Instant::now();
        self.inner.insert_batch(values);
        // One amortised per-value latency sample per batch, so batched
        // pipelines keep feeding the same histogram the scalar path does.
        self.metrics
            .insert_ns
            .record(start.elapsed().as_nanos() as u64 / values.len() as u64);
        self.flush();
    }

    fn query(&self, q: f64) -> Result<f64, QueryError> {
        let start = Instant::now();
        let result = self.inner.query(q);
        self.metrics
            .query_ns
            .record(start.elapsed().as_nanos() as u64);
        self.metrics.queries.inc();
        if result.is_err() {
            self.metrics.query_errors.inc();
        }
        result
    }

    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        let start = Instant::now();
        let result = self.inner.query_many(qs);
        self.metrics
            .query_ns
            .record(start.elapsed().as_nanos() as u64);
        self.metrics.queries.inc();
        if result.is_err() {
            self.metrics.query_errors.inc();
        }
        result
    }

    fn count(&self) -> u64 {
        self.inner.count()
    }

    fn memory_footprint(&self) -> usize {
        let bytes = self.inner.memory_footprint();
        self.metrics.memory_bytes.set(bytes as u64);
        bytes
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<S: MergeableSketch> MergeableSketch for Instrumented<S> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        let start = Instant::now();
        let result = self.inner.merge(&other.inner);
        self.metrics
            .merge_ns
            .record(start.elapsed().as_nanos() as u64);
        self.metrics.merges.inc();
        // `other`'s buffered insert counts stay with `other` — it flushes
        // them itself (on sample, flush, or drop), so the shared counter
        // still converges to the true total without double counting.
        self.flush();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::check_quantile;

    /// Minimal trait-complete sketch for exercising the wrapper: keeps
    /// every value (core itself ships no real sketch implementations).
    #[derive(Debug, Clone, Default)]
    struct KeepAll(Vec<f64>);

    impl KeepAll {
        fn new() -> Self {
            Self::default()
        }
    }

    impl QuantileSketch for KeepAll {
        fn insert(&mut self, v: f64) {
            self.0.push(v);
        }

        fn query(&self, q: f64) -> Result<f64, QueryError> {
            check_quantile(q)?;
            if self.0.is_empty() {
                return Err(QueryError::Empty);
            }
            let mut s = self.0.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
            Ok(s[rank - 1])
        }

        fn count(&self) -> u64 {
            self.0.len() as u64
        }

        fn memory_footprint(&self) -> usize {
            self.0.len() * std::mem::size_of::<f64>()
        }

        fn name(&self) -> &'static str {
            "keep-all"
        }
    }

    impl MergeableSketch for KeepAll {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            self.0.extend_from_slice(&other.0);
            Ok(())
        }
    }

    #[test]
    fn counter_accumulates_across_clones() {
        let r = MetricsRegistry::new();
        let a = r.counter("events");
        let b = r.counter("events");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.snapshot().counter("events"), Some(5));
    }

    #[test]
    fn gauge_last_write_and_max() {
        let r = MetricsRegistry::new();
        let g = r.gauge("mem");
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_slots_are_exact_below_two_half_octaves() {
        // Values below 2^(sig+1) each get their own slot.
        let h = LogHistogram::new(5);
        for v in 0..64u64 {
            assert_eq!(h.slot_for(v), v as usize, "v={v}");
            assert_eq!(h.value_for(v as usize), v);
        }
    }

    #[test]
    fn histogram_slot_round_trip_covers_value() {
        let h = LogHistogram::new(5);
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 32,
            (1 << 60) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let slot = h.slot_for(v);
            let lo = h.value_for(slot);
            let hi = h.value_for(slot + 1);
            assert!(lo <= v, "v={v} lo={lo}");
            assert!(v < hi.max(lo + 1) || hi == u64::MAX, "v={v} hi={hi}");
        }
    }

    #[test]
    fn histogram_bucket_boundaries_double_per_octave() {
        // Slot widths double exactly when crossing each power of two:
        // the first slot of bucket b+1 covers twice the range of the
        // first slot of bucket b.
        let h = LogHistogram::new(5);
        let half = 32usize;
        for bucket in 1..10usize {
            let first_slot = (bucket + 1) * half; // first slot of bucket
            let width = h.value_for(first_slot + 1) - h.value_for(first_slot);
            assert_eq!(width, 1 << bucket, "bucket {bucket}");
        }
    }

    #[test]
    fn histogram_relative_error_bound_holds() {
        let h = LogHistogram::new(5);
        let alpha = h.relative_error();
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let slot = h.slot_for(v);
            let mid = h.midpoint_for(slot) as f64;
            let rel = (mid - v as f64).abs() / v as f64;
            assert!(rel <= alpha + 1e-9, "v={v} mid={mid} rel={rel}");
            v = v.saturating_mul(2).max(v + 7);
        }
    }

    #[test]
    fn histogram_percentiles_on_uniform_values() {
        let h = LogHistogram::new(8);
        let n = 100_000u64;
        for i in 1..=n {
            h.record(i);
        }
        assert_eq!(h.count(), n);
        for q in [0.25, 0.5, 0.9, 0.99] {
            let truth = q * n as f64;
            let est = h.value_at_quantile(q).unwrap() as f64;
            assert!(
                ((est - truth) / truth).abs() < 0.01,
                "q={q} est={est} truth={truth}"
            );
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(n));
        let mean = h.mean().unwrap();
        let truth = (n + 1) as f64 / 2.0;
        assert!((mean - truth).abs() / truth < 1e-9, "mean {mean}");
    }

    #[test]
    fn histogram_empty_reads_are_none() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.value_at_quantile(0.5), None);
        assert_eq!(h.value_at_quantile(0.0), None);
    }

    #[test]
    fn histogram_extremes_do_not_overflow() {
        let h = LogHistogram::new(5);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.value_at_quantile(0.5), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn instrumented_counts_inserts_exactly() {
        let r = MetricsRegistry::new();
        let mut s = Instrumented::new(KeepAll::new(), &r, "t");
        // A count straddling several sample periods plus a remainder.
        let n = 3 * DEFAULT_INSERT_SAMPLE_PERIOD + 17;
        for i in 0..n {
            s.insert(i as f64);
        }
        s.flush();
        let snap = r.snapshot();
        assert_eq!(snap.counter("t.inserts"), Some(n));
        // One timing sample per full period.
        assert_eq!(snap.histogram("t.insert_ns").unwrap().count, 3);
        assert!(snap.gauge("t.memory_bytes").unwrap() > 0);
    }

    #[test]
    fn instrumented_flushes_on_drop() {
        let r = MetricsRegistry::new();
        {
            let mut s = Instrumented::new(KeepAll::new(), &r, "t");
            for i in 0..5 {
                s.insert(i as f64);
            }
        }
        assert_eq!(r.snapshot().counter("t.inserts"), Some(5));
    }

    #[test]
    fn instrumented_queries_and_errors() {
        let r = MetricsRegistry::new();
        let mut s = Instrumented::new(KeepAll::new(), &r, "t");
        assert!(s.query(0.5).is_err()); // empty
        s.insert(1.0);
        s.insert(2.0);
        assert_eq!(s.query(1.0).unwrap(), 2.0);
        assert_eq!(s.query_many(&[0.5, 1.0]).unwrap(), vec![1.0, 2.0]);
        let snap = r.snapshot();
        assert_eq!(snap.counter("t.queries"), Some(3));
        assert_eq!(snap.counter("t.query_errors"), Some(1));
        assert_eq!(snap.histogram("t.query_ns").unwrap().count, 3);
    }

    #[test]
    fn instrumented_delegates_identity() {
        let r = MetricsRegistry::new();
        let mut plain = KeepAll::new();
        let mut wrapped = Instrumented::new(KeepAll::new(), &r, "t");
        for i in 0..1000 {
            let v = (i * 37 % 1000) as f64;
            plain.insert(v);
            wrapped.insert(v);
        }
        assert_eq!(wrapped.count(), plain.count());
        assert_eq!(wrapped.name(), plain.name());
        assert_eq!(wrapped.memory_footprint(), plain.memory_footprint());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(wrapped.query(q).unwrap(), plain.query(q).unwrap());
        }
    }

    #[test]
    fn instrumented_merge_counts_and_times() {
        let r = MetricsRegistry::new();
        let mut a = Instrumented::new(KeepAll::new(), &r, "m");
        let mut b = Instrumented::new(KeepAll::new(), &r, "m");
        for i in 0..10 {
            a.insert(i as f64);
            b.insert((i + 10) as f64);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 20);
        let snap = r.snapshot();
        assert_eq!(snap.counter("m.merges"), Some(1));
        assert_eq!(snap.histogram("m.merge_ns").unwrap().count, 1);
        // The merge flushes a's 10 pending inserts; b's stay buffered
        // until its own drop, and are counted exactly once.
        assert_eq!(snap.counter("m.inserts"), Some(10));
        drop(b);
        assert_eq!(r.snapshot().counter("m.inserts"), Some(20));
    }

    #[test]
    fn snapshot_text_and_json_render() {
        let r = MetricsRegistry::new();
        r.counter("a.events").add(7);
        r.gauge("b.mem").set(1234);
        let h = r.histogram("c.lat_ns");
        for v in [10, 20, 30] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("a.events"));
        assert!(text.contains("counter    7"));
        assert!(text.contains("gauge      1234"));
        assert!(text.contains("count=3"));
        let json = snap.to_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("{\"name\":\"a.events\",\"kind\":\"counter\",\"value\":7}"));
        assert!(json.contains("\"kind\":\"histogram\",\"count\":3"));
        // Entries are name-sorted.
        let ia = json.find("a.events").unwrap();
        let ib = json.find("b.mem").unwrap();
        let ic = json.find("c.lat_ns").unwrap();
        assert!(ia < ib && ib < ic);
    }

    #[test]
    fn json_escapes_names() {
        let r = MetricsRegistry::new();
        r.counter("weird\"name\\with\ncontrol").inc();
        let json = r.snapshot().to_json();
        assert!(json.contains("weird\\\"name\\\\with\\ncontrol"));
    }
}

//! Rank and quantile definitions over concrete (small) data sets, exactly as
//! laid out in §2.1 and Table 1 of the paper.
//!
//! These helpers are deliberately simple and operate on sorted slices; they
//! back the exact oracle and the unit tests that pin the paper's worked
//! examples.

/// Rank of `x` within sorted `data`: the number of elements `≤ x`.
///
/// This matches the paper's reading of rank ("the number of elements less
/// than or equal to x"). Ranks are 1-based: the smallest element of a
/// 10-element set has rank 1, the largest rank 10.
pub fn rank_of(sorted: &[f64], x: f64) -> usize {
    // partition_point returns the first index whose element is > x, which is
    // exactly the count of elements <= x.
    sorted.partition_point(|&v| v <= x)
}

/// The `q`-quantile of sorted `data`: the element whose rank is `⌈qN⌉`
/// (§2.1). Requires `0 < q ≤ 1` and non-empty data.
pub fn quantile_of(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data set");
    assert!(q > 0.0 && q <= 1.0, "q must lie in (0,1], got {q}");
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// `Quantile⁻¹(x)`: the value `q` such that the `q`-quantile query returns
/// `x`'s position, i.e. `Rank(x)/N` (§2.1, Table 1).
pub fn inverse_quantile(sorted: &[f64], x: f64) -> f64 {
    assert!(!sorted.is_empty(), "inverse quantile of empty data set");
    rank_of(sorted, x) as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The data set of Table 1 in the paper.
    const TABLE1: [f64; 10] = [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0];

    #[test]
    fn table1_ranks() {
        for (i, &x) in TABLE1.iter().enumerate() {
            assert_eq!(rank_of(&TABLE1, x), i + 1, "rank of {x}");
        }
    }

    #[test]
    fn table1_inverse_quantiles() {
        let expected = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
        for (&x, &q) in TABLE1.iter().zip(expected.iter()) {
            assert!((inverse_quantile(&TABLE1, x) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn table1_quantiles_round_trip() {
        // q-quantile -> x and Quantile^{-1}(x) -> q are inverse on the grid.
        for i in 1..=10 {
            let q = i as f64 / 10.0;
            let x = quantile_of(&TABLE1, q);
            assert_eq!(x, TABLE1[i - 1]);
            assert!((inverse_quantile(&TABLE1, x) - q).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_running_example_09_quantile() {
        // §2.2: the true 0.9-quantile of Table 1 is 30.
        assert_eq!(quantile_of(&TABLE1, 0.9), 30.0);
        // and 18 has rank 8.
        assert_eq!(rank_of(&TABLE1, 18.0), 8);
    }

    #[test]
    fn rank_of_value_between_elements() {
        // Rank counts elements <= x even when x is absent from the data.
        assert_eq!(rank_of(&TABLE1, 10.0), 4);
        assert_eq!(rank_of(&TABLE1, 2.0), 0);
        assert_eq!(rank_of(&TABLE1, 100.0), 10);
    }

    #[test]
    fn quantile_of_ties() {
        let data = [1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(quantile_of(&data, 0.4), 2.0);
        assert_eq!(quantile_of(&data, 0.6), 2.0);
        assert_eq!(quantile_of(&data, 1.0), 5.0);
    }

    #[test]
    fn quantile_of_single_element() {
        let data = [42.0];
        for q in [0.01, 0.5, 1.0] {
            assert_eq!(quantile_of(&data, q), 42.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        quantile_of(&[], 0.5);
    }
}

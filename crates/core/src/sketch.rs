//! The traits implemented by every quantile sketch in the suite.

use std::fmt;

/// Error returned by [`QuantileSketch::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The sketch has not consumed any values yet.
    Empty,
    /// The requested quantile is outside `(0, 1]`.
    InvalidQuantile,
    /// The sketch's estimation procedure failed to converge (only the
    /// Moments sketch's maximum-entropy solver can report this).
    EstimationFailed(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "sketch is empty"),
            QueryError::InvalidQuantile => write!(f, "quantile must lie in (0, 1]"),
            QueryError::EstimationFailed(why) => write!(f, "estimation failed: {why}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Error returned by [`MergeableSketch::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two sketches were configured with incompatible parameters
    /// (e.g. different γ for DDSketch/UDDSketch, different number of
    /// moments for the Moments sketch).
    IncompatibleParameters(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::IncompatibleParameters(why) => {
                write!(f, "incompatible sketch parameters: {why}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// A single-pass summary of a stream of `f64` values that can answer
/// approximate quantile queries.
///
/// The trait mirrors the operations measured in the paper: `insert`
/// (§4.4.1), `query` (§4.4.2), and — through [`MergeableSketch`] —
/// `merge` (§4.4.3). [`memory_footprint`](QuantileSketch::memory_footprint)
/// supports the data-structure analysis of §4.3 / Table 3.
pub trait QuantileSketch {
    /// Consume one value from the stream.
    fn insert(&mut self, value: f64);

    /// Estimate the `q`-quantile of everything inserted so far.
    ///
    /// `q` must lie in `(0, 1]`; per §2.1 the `q`-quantile is the element of
    /// rank `⌈qN⌉` in the sorted stream.
    fn query(&self, q: f64) -> Result<f64, QueryError>;

    /// Number of values inserted so far.
    fn count(&self) -> u64;

    /// Bytes of state retained by the sketch (the quantity reported in
    /// Table 3). This counts the numbers the summary stores — counters,
    /// retained samples, bucket counts — not transient allocation slack.
    fn memory_footprint(&self) -> usize;

    /// Short human-readable name used in experiment output
    /// (`"KLL"`, `"Moments"`, `"DDS"`, `"UDDS"`, `"REQ"`).
    fn name(&self) -> &'static str;

    /// Estimate several quantiles at once. The default loops over
    /// [`query`](QuantileSketch::query); implementations with per-query
    /// setup cost (the sampling sketches build a sorted view, the Moments
    /// sketch runs its solver) override this to pay that cost once —
    /// the paper's harness queries eight quantiles per window (§4.2).
    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        qs.iter().map(|&q| self.query(q)).collect()
    }

    /// Convenience: insert every value of an iterator.
    fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I)
    where
        Self: Sized,
    {
        for v in values {
            self.insert(v);
        }
    }

    /// True if nothing has been inserted.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

/// A sketch that can absorb another sketch of the same type such that the
/// result summarises the union of both streams (§2.4).
pub trait MergeableSketch: QuantileSketch {
    /// Merge `other` into `self`.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// Validate a quantile argument, shared by all implementations.
///
/// The paper (§2.1) defines the `q`-quantile for `0 < q ≤ 1`.
#[inline]
pub fn check_quantile(q: f64) -> Result<(), QueryError> {
    if q.is_nan() || q <= 0.0 || q > 1.0 {
        Err(QueryError::InvalidQuantile)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_quantile_accepts_paper_range() {
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99, 1.0] {
            assert!(check_quantile(q).is_ok(), "q={q} should be valid");
        }
    }

    #[test]
    fn check_quantile_rejects_zero_and_above_one() {
        assert_eq!(check_quantile(0.0), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(-0.1), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(1.0001), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(f64::NAN), Err(QueryError::InvalidQuantile));
    }

    #[test]
    fn query_many_default_loops() {
        struct Fixed;
        impl QuantileSketch for Fixed {
            fn insert(&mut self, _: f64) {}
            fn query(&self, q: f64) -> Result<f64, QueryError> {
                check_quantile(q)?;
                Ok(q * 100.0)
            }
            fn count(&self) -> u64 {
                1
            }
            fn memory_footprint(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let s = Fixed;
        assert_eq!(s.query_many(&[0.1, 0.5]).unwrap(), vec![10.0, 50.0]);
        assert!(s.query_many(&[0.1, 2.0]).is_err());
    }

    #[test]
    fn errors_display() {
        assert_eq!(QueryError::Empty.to_string(), "sketch is empty");
        assert!(QueryError::EstimationFailed("solver diverged".into())
            .to_string()
            .contains("solver diverged"));
        assert!(
            MergeError::IncompatibleParameters("gamma mismatch".into())
                .to_string()
                .contains("gamma mismatch")
        );
    }
}

//! The traits implemented by every quantile sketch in the suite.

use std::fmt;

use crate::codec::DecodeError;

/// Error returned by [`QuantileSketch::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The sketch has not consumed any values yet.
    Empty,
    /// The requested quantile lies outside `(0, 1]` — the §2.1 domain
    /// every implementation enforces through [`check_quantile`].
    InvalidQuantile,
    /// The sketch's estimation procedure failed to converge (only the
    /// Moments sketch's maximum-entropy solver can report this).
    EstimationFailed(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "sketch is empty"),
            QueryError::InvalidQuantile => write!(f, "quantile must lie in (0, 1]"),
            QueryError::EstimationFailed(why) => write!(f, "estimation failed: {why}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Error returned by [`MergeableSketch::merge`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// The two sketches were configured with incompatible parameters
    /// (e.g. different γ for DDSketch/UDDSketch, different number of
    /// moments for the Moments sketch).
    IncompatibleParameters(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::IncompatibleParameters(why) => {
                write!(f, "incompatible sketch parameters: {why}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Umbrella over everything a sketch operation can fail with: queries
/// ([`QueryError`]), merges ([`MergeError`]), and wire-format decoding
/// ([`DecodeError`]).
///
/// Engine- and pipeline-level code that chains all three operations
/// (checkpoint → decode → merge → query) propagates one error type
/// instead of matching three enums; the `From` impls make `?` just work.
/// Marked `#[non_exhaustive]` so future failure classes (e.g. I/O-backed
/// stores) can be added without breaking downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SketchError {
    /// A quantile query failed.
    Query(QueryError),
    /// A merge was attempted between incompatible sketches.
    Merge(MergeError),
    /// A serialized payload failed to decode.
    Decode(DecodeError),
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::Query(e) => write!(f, "query failed: {e}"),
            SketchError::Merge(e) => write!(f, "merge failed: {e}"),
            SketchError::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for SketchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SketchError::Query(e) => Some(e),
            SketchError::Merge(e) => Some(e),
            SketchError::Decode(e) => Some(e),
        }
    }
}

impl From<QueryError> for SketchError {
    fn from(e: QueryError) -> Self {
        SketchError::Query(e)
    }
}

impl From<MergeError> for SketchError {
    fn from(e: MergeError) -> Self {
        SketchError::Merge(e)
    }
}

impl From<DecodeError> for SketchError {
    fn from(e: DecodeError) -> Self {
        SketchError::Decode(e)
    }
}

/// A single-pass summary of a stream of `f64` values that can answer
/// approximate quantile queries.
///
/// The trait mirrors the operations measured in the paper: `insert`
/// (§4.4.1), `query` (§4.4.2), and — through [`MergeableSketch`] —
/// `merge` (§4.4.3). [`memory_footprint`](QuantileSketch::memory_footprint)
/// supports the data-structure analysis of §4.3 / Table 3.
///
/// # NaN policy
///
/// `NaN` carries no ordering information and cannot be ranked, so every
/// ingestion method (`insert`, [`insert_n`](QuantileSketch::insert_n),
/// [`insert_batch`](QuantileSketch::insert_batch)) **ignores** it: a NaN
/// input is silently skipped — it is not recorded, does not perturb
/// min/max, and [`count`](QuantileSketch::count) does not advance. All
/// five paper sketches enforce this uniformly (previously NaN was only a
/// `debug_assert!`, so release builds could corrupt sketch state).
pub trait QuantileSketch {
    /// Consume one value from the stream. NaN is ignored (see the
    /// trait-level NaN policy).
    fn insert(&mut self, value: f64);

    /// Estimate the `q`-quantile of everything inserted so far.
    ///
    /// `q` must lie in `(0, 1]`; per §2.1 the `q`-quantile is the element of
    /// rank `⌈qN⌉` in the sorted stream. Every implementation validates the
    /// bound through the shared [`check_quantile`] helper, so anything
    /// outside `(0, 1]` (including NaN) uniformly returns
    /// [`QueryError::InvalidQuantile`].
    fn query(&self, q: f64) -> Result<f64, QueryError>;

    /// Number of values inserted so far.
    fn count(&self) -> u64;

    /// Bytes of state retained by the sketch (the quantity reported in
    /// Table 3). This counts the numbers the summary stores — counters,
    /// retained samples, bucket counts — not transient allocation slack.
    fn memory_footprint(&self) -> usize;

    /// Short human-readable name used in experiment output
    /// (`"KLL"`, `"Moments"`, `"DDS"`, `"UDDS"`, `"REQ"`).
    fn name(&self) -> &'static str;

    /// Insert `count` occurrences of `value` at once (weighted or
    /// pre-aggregated ingestion). Equivalent to calling
    /// [`insert`](QuantileSketch::insert) `count` times — the default does
    /// exactly that; sketches with constant-work weighted updates override
    /// it (DDSketch/UDDSketch bump one bucket, Moments scales each power
    /// term by `count`).
    fn insert_n(&mut self, value: f64, count: u64) {
        for _ in 0..count {
            self.insert(value);
        }
    }

    /// Consume a slice of values in one call.
    ///
    /// Semantically identical to inserting every element in order, and the
    /// paper sketches guarantee more: their overrides produce
    /// **bit-identical serialized state** to the scalar loop (asserted by
    /// the `batch_insert_equivalence` property suite) while skipping
    /// per-value overhead — an ln-free interpolated index mapping plus
    /// same-bucket run coalescing (DDSketch/UDDSketch), one capacity check
    /// per chunk instead of per value (KLL/REQ), and an ILP-friendly
    /// blocked power-sum accumulator (Moments). The sharded ingestion
    /// engine and the bench harness ingest through this method.
    fn insert_batch(&mut self, values: &[f64]) {
        for &v in values {
            self.insert(v);
        }
    }

    /// Estimate several quantiles at once. The default loops over
    /// [`query`](QuantileSketch::query); implementations with per-query
    /// setup cost (the sampling sketches build a sorted view, the Moments
    /// sketch runs its solver) override this to pay that cost once —
    /// the paper's harness queries eight quantiles per window (§4.2).
    fn query_many(&self, qs: &[f64]) -> Result<Vec<f64>, QueryError> {
        qs.iter().map(|&q| self.query(q)).collect()
    }

    /// Convenience: insert every value of an iterator.
    fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I)
    where
        Self: Sized,
    {
        for v in values {
            self.insert(v);
        }
    }

    /// True if nothing has been inserted.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }
}

/// A sketch that can absorb another sketch of the same type such that the
/// result summarises the union of both streams (§2.4).
pub trait MergeableSketch: QuantileSketch {
    /// Merge `other` into `self`.
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// A reusable recipe for building identically-configured sketches.
///
/// Keyed aggregation (one sketch per `(tenant, metric-key)` pair in a
/// registry, as the multi-tenant ingest engine keeps) needs to mint new
/// sketches *lazily, from many threads, long after configuration time* —
/// a plain `FnMut() -> S` closure can't be shared by shard workers, and a
/// factory whose successive calls differ (e.g. bumping a seed counter)
/// would make a key's sketch depend on registry arrival order, breaking
/// the bit-identical recovery contract. `SketchFactory` is the plumbing
/// that fixes both: `make` takes `&self`, so every call yields the same
/// initial state, and the factory value itself can be cloned into each
/// worker.
///
/// Any `Fn() -> S` closure (capturing only its parameters) is a factory
/// via the blanket impl:
///
/// ```
/// use qsketch_core::sketch::SketchFactory;
/// # use qsketch_core::sketch::{check_quantile, QuantileSketch, QueryError};
/// # #[derive(Clone)]
/// # struct Dummy(f64);
/// # impl QuantileSketch for Dummy {
/// #     fn insert(&mut self, v: f64) { self.0 = v; }
/// #     fn query(&self, q: f64) -> Result<f64, QueryError> {
/// #         check_quantile(q)?;
/// #         Ok(self.0)
/// #     }
/// #     fn count(&self) -> u64 { 1 }
/// #     fn memory_footprint(&self) -> usize { 8 }
/// #     fn name(&self) -> &'static str { "dummy" }
/// # }
/// let alpha = 0.01;
/// let factory = move || Dummy(alpha);
/// let a = factory.make();
/// let b = factory.make(); // same initial state as `a`, by contract
/// assert_eq!(a.query(1.0).unwrap(), b.query(1.0).unwrap());
/// ```
pub trait SketchFactory {
    /// The sketch type this factory builds.
    type Sketch: QuantileSketch;

    /// Build one sketch. Every call must produce the same initial state
    /// (parameters *and* seeds), so that which call built a key's sketch
    /// can never be observed.
    fn make(&self) -> Self::Sketch;
}

impl<S: QuantileSketch, F: Fn() -> S> SketchFactory for F {
    type Sketch = S;

    fn make(&self) -> S {
        self()
    }
}

/// Fold sketches through a binary merge tree (§2.4, the aggregation shape
/// of Fig. 5c): pairwise rounds, so `k` shards take `⌈log₂ k⌉` rounds and
/// every sketch participates in at most `⌈log₂ k⌉` merges — the same
/// depth a distributed reduce would use, and the order the sharded
/// ingestion engine folds its shard snapshots in.
///
/// Returns `Ok(None)` for an empty input. Merge errors (incompatible
/// parameters) propagate immediately.
///
/// ```
/// use qsketch_core::sketch::{merge_tree, MergeableSketch, QuantileSketch};
/// # use qsketch_core::sketch::{check_quantile, MergeError, QueryError};
/// # #[derive(Clone, Default)]
/// # struct KeepAll(Vec<f64>);
/// # impl QuantileSketch for KeepAll {
/// #     fn insert(&mut self, v: f64) { self.0.push(v); }
/// #     fn query(&self, q: f64) -> Result<f64, QueryError> {
/// #         check_quantile(q)?;
/// #         let mut s = self.0.clone();
/// #         s.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// #         let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
/// #         s.get(rank - 1).copied().ok_or(QueryError::Empty)
/// #     }
/// #     fn count(&self) -> u64 { self.0.len() as u64 }
/// #     fn memory_footprint(&self) -> usize { self.0.len() * 8 }
/// #     fn name(&self) -> &'static str { "keep-all" }
/// # }
/// # impl MergeableSketch for KeepAll {
/// #     fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
/// #         self.0.extend_from_slice(&other.0);
/// #         Ok(())
/// #     }
/// # }
/// let shards: Vec<KeepAll> = (0..4)
///     .map(|i| {
///         let mut s = KeepAll::default();
///         for v in 0..25 {
///             s.insert((i * 25 + v) as f64 + 1.0);
///         }
///         s
///     })
///     .collect();
/// let merged = merge_tree(shards).unwrap().unwrap();
/// assert_eq!(merged.count(), 100);
/// assert_eq!(merged.query(0.5).unwrap(), 50.0);
/// ```
pub fn merge_tree<S: MergeableSketch>(shards: Vec<S>) -> Result<Option<S>, MergeError> {
    Ok(merge_tree_counted(shards)?.map(|(s, _)| s))
}

/// [`merge_tree`] with merge-count instrumentation: also returns how many
/// pairwise `merge` calls the fold performed (`k - 1` for `k` inputs).
/// The rollup store's range queries use this to *assert* their O(log n)
/// stored-sketch bound rather than just claim it.
pub fn merge_tree_counted<S: MergeableSketch>(
    mut shards: Vec<S>,
) -> Result<Option<(S, usize)>, MergeError> {
    let mut merges = 0usize;
    while shards.len() > 1 {
        let mut next = Vec::with_capacity(shards.len().div_ceil(2));
        let mut it = shards.into_iter();
        while let Some(mut left) = it.next() {
            if let Some(right) = it.next() {
                left.merge(&right)?;
                merges += 1;
            }
            next.push(left);
        }
        shards = next;
    }
    Ok(shards.pop().map(|s| (s, merges)))
}

/// Validate a quantile argument, shared by all implementations.
///
/// The paper (§2.1) defines the `q`-quantile for `q ∈ (0, 1]` — zero is
/// excluded (rank `⌈0·N⌉ = 0` names no element), one is included (the
/// maximum). This helper is the single place that bound lives: the five
/// sketch implementations, the baselines, the exact oracle, and the
/// metrics histogram all delegate here, so the accepted range can never
/// drift between them.
#[inline]
pub fn check_quantile(q: f64) -> Result<(), QueryError> {
    if q.is_nan() || q <= 0.0 || q > 1.0 {
        Err(QueryError::InvalidQuantile)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_quantile_accepts_paper_range() {
        for q in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99, 1.0] {
            assert!(check_quantile(q).is_ok(), "q={q} should be valid");
        }
    }

    #[test]
    fn check_quantile_rejects_zero_and_above_one() {
        assert_eq!(check_quantile(0.0), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(-0.1), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(1.0001), Err(QueryError::InvalidQuantile));
        assert_eq!(check_quantile(f64::NAN), Err(QueryError::InvalidQuantile));
    }

    #[test]
    fn query_many_default_loops() {
        struct Fixed;
        impl QuantileSketch for Fixed {
            fn insert(&mut self, _: f64) {}
            fn query(&self, q: f64) -> Result<f64, QueryError> {
                check_quantile(q)?;
                Ok(q * 100.0)
            }
            fn count(&self) -> u64 {
                1
            }
            fn memory_footprint(&self) -> usize {
                0
            }
            fn name(&self) -> &'static str {
                "fixed"
            }
        }
        let s = Fixed;
        assert_eq!(s.query_many(&[0.1, 0.5]).unwrap(), vec![10.0, 50.0]);
        assert!(s.query_many(&[0.1, 2.0]).is_err());
    }

    /// Merge-order-recording sketch for shape-testing `merge_tree`.
    #[derive(Clone)]
    struct Labelled {
        label: String,
        merges_absorbed: u32,
        n: u64,
    }

    impl Labelled {
        fn new(label: &str) -> Self {
            Self {
                label: label.to_string(),
                merges_absorbed: 0,
                n: 1,
            }
        }
    }

    impl QuantileSketch for Labelled {
        fn insert(&mut self, _: f64) {
            self.n += 1;
        }
        fn query(&self, q: f64) -> Result<f64, QueryError> {
            check_quantile(q)?;
            Ok(0.0)
        }
        fn count(&self) -> u64 {
            self.n
        }
        fn memory_footprint(&self) -> usize {
            self.label.len()
        }
        fn name(&self) -> &'static str {
            "labelled"
        }
    }

    impl MergeableSketch for Labelled {
        fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
            if other.label.contains('!') {
                return Err(MergeError::IncompatibleParameters("poisoned".into()));
            }
            self.label = format!("({}+{})", self.label, other.label);
            self.merges_absorbed += 1;
            self.n += other.n;
            Ok(())
        }
    }

    #[test]
    fn merge_tree_empty_and_single() {
        assert!(merge_tree(Vec::<Labelled>::new()).unwrap().is_none());
        let one = merge_tree(vec![Labelled::new("a")]).unwrap().unwrap();
        assert_eq!(one.label, "a");
        assert_eq!(one.merges_absorbed, 0);
    }

    #[test]
    fn merge_tree_is_binary_balanced() {
        // Four shards: two pairwise rounds, root absorbed exactly
        // log2(4) = 2 merges (a left-fold root would absorb 3).
        let shards = vec![
            Labelled::new("a"),
            Labelled::new("b"),
            Labelled::new("c"),
            Labelled::new("d"),
        ];
        let root = merge_tree(shards).unwrap().unwrap();
        assert_eq!(root.label, "((a+b)+(c+d))");
        assert_eq!(root.merges_absorbed, 2);
        assert_eq!(root.count(), 4);
    }

    #[test]
    fn merge_tree_odd_count_carries_the_straggler() {
        let shards = (0..5).map(|i| Labelled::new(&format!("s{i}"))).collect();
        let root: Labelled = merge_tree(shards).unwrap().unwrap();
        assert_eq!(root.count(), 5);
        assert_eq!(root.label, "(((s0+s1)+(s2+s3))+s4)");
    }

    #[test]
    fn merge_tree_propagates_errors() {
        let shards = vec![Labelled::new("a"), Labelled::new("bad!")];
        assert!(merge_tree(shards).is_err());
    }

    #[test]
    fn errors_display() {
        assert_eq!(QueryError::Empty.to_string(), "sketch is empty");
        assert!(QueryError::EstimationFailed("solver diverged".into())
            .to_string()
            .contains("solver diverged"));
        assert!(
            MergeError::IncompatibleParameters("gamma mismatch".into())
                .to_string()
                .contains("gamma mismatch")
        );
    }

    #[test]
    fn sketch_error_wraps_all_three_via_from() {
        fn fails_query() -> Result<(), SketchError> {
            Err(QueryError::Empty)?;
            Ok(())
        }
        fn fails_merge() -> Result<(), SketchError> {
            Err(MergeError::IncompatibleParameters("k".into()))?;
            Ok(())
        }
        fn fails_decode() -> Result<(), SketchError> {
            Err(DecodeError::UnexpectedEnd)?;
            Ok(())
        }
        assert_eq!(
            fails_query().unwrap_err(),
            SketchError::Query(QueryError::Empty)
        );
        assert!(matches!(fails_merge().unwrap_err(), SketchError::Merge(_)));
        assert_eq!(
            fails_decode().unwrap_err(),
            SketchError::Decode(DecodeError::UnexpectedEnd)
        );
    }

    #[test]
    fn sketch_error_display_and_source() {
        use std::error::Error as _;
        let e = SketchError::from(QueryError::InvalidQuantile);
        assert!(e.to_string().contains("query failed"));
        assert!(e.to_string().contains("(0, 1]"));
        assert!(e.source().is_some());
        let d = SketchError::from(DecodeError::UnsupportedVersion(9));
        assert!(d.to_string().contains("decode failed"));
    }
}

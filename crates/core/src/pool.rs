//! Recycled buffer pools for allocation-free steady-state hot paths.
//!
//! The server data plane hands every ingest batch from a socket thread
//! to a shard worker through a queue. Allocating a fresh buffer per
//! frame makes the allocator — not the sketch — the bottleneck (the
//! paper's §5 measures inserts in tens of nanoseconds; a malloc/free
//! pair costs the same again). A [`BufferPool`] breaks that cycle:
//! buffers are handed out as [`Pooled`] guards, travel through queues
//! by value, and return to the free list when dropped — so after a
//! short warmup the hot path recycles a fixed working set and performs
//! **zero heap allocations per frame** (proven by the repo's
//! `alloc_gate` test).
//!
//! Anything [`Recycle`] can be pooled: the trait says how to wipe a
//! buffer for reuse (keeping its capacity — that is the whole point)
//! and how many heap bytes it retains, so the pool can account for the
//! memory it is holding idle.
//!
//! ```
//! use qsketch_core::pool::BufferPool;
//!
//! let pool: BufferPool<Vec<f64>> = BufferPool::new(8);
//! {
//!     let mut batch = pool.get(); // miss: allocates a fresh Vec
//!     batch.extend_from_slice(&[1.0, 2.0, 3.0]);
//! } // guard dropped: the Vec (cleared, capacity kept) returns to the pool
//! let batch = pool.get(); // hit: same backing storage, no allocation
//! assert_eq!(batch.capacity() >= 3, true);
//! assert_eq!(pool.misses(), 1);
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, MetricsRegistry};

/// A buffer type that can be wiped and reused by a [`BufferPool`].
///
/// `Default` provides the fresh buffer on a pool miss; [`reset`]
/// restores a used buffer to the `Default`-equivalent *logical* state
/// while keeping its heap capacity; [`heap_bytes`] reports that
/// retained capacity so the pool can publish how much memory it is
/// holding.
///
/// [`reset`]: Recycle::reset
/// [`heap_bytes`]: Recycle::heap_bytes
pub trait Recycle: Default + Send + 'static {
    /// Clear contents, keep capacity.
    fn reset(&mut self);
    /// Heap bytes retained by this buffer's capacity.
    fn heap_bytes(&self) -> usize;
}

impl Recycle for Vec<u8> {
    fn reset(&mut self) {
        self.clear();
    }
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl Recycle for Vec<f64> {
    fn reset(&mut self) {
        self.clear();
    }
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<f64>()
    }
}

impl Recycle for String {
    fn reset(&mut self) {
        self.clear();
    }
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

struct Inner<T> {
    /// Free list, with the idle-byte accounting updated **while this
    /// lock is held**: pop-then-subtract and push-then-add must be one
    /// atomic step, or a concurrent `get` can subtract a buffer's bytes
    /// before the returning thread has added them and wrap the counter
    /// below zero.
    free: Mutex<Vec<T>>,
    /// Most buffers kept idle; returns beyond this are dropped so a
    /// burst cannot pin its high-water mark forever.
    max_idle: usize,
    misses: AtomicU64,
    hits: AtomicU64,
    /// Heap bytes currently idle in `free`.
    idle_bytes: AtomicU64,
    /// Optional observability: bumped on every miss / resize.
    miss_counter: Option<Counter>,
    pooled_gauge: Option<Gauge>,
}

impl<T: Recycle> Inner<T> {
    fn add_idle_bytes(&self, delta: u64) {
        let v = self
            .idle_bytes
            .fetch_add(delta, Ordering::Relaxed)
            .saturating_add(delta);
        if let Some(g) = &self.pooled_gauge {
            g.set(v);
        }
    }

    fn sub_idle_bytes(&self, delta: u64) {
        let v = self
            .idle_bytes
            .fetch_sub(delta, Ordering::Relaxed)
            .saturating_sub(delta);
        if let Some(g) = &self.pooled_gauge {
            g.set(v);
        }
    }
}

/// A thread-safe free list of [`Recycle`] buffers. Cloning the pool is
/// cheap and shares the same free list.
pub struct BufferPool<T: Recycle> {
    inner: Arc<Inner<T>>,
}

impl<T: Recycle> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Recycle> BufferPool<T> {
    /// A pool keeping at most `max_idle` buffers on the free list.
    pub fn new(max_idle: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                free: Mutex::new(Vec::with_capacity(max_idle.min(1024))),
                max_idle,
                misses: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                idle_bytes: AtomicU64::new(0),
                miss_counter: None,
                pooled_gauge: None,
            }),
        }
    }

    /// A pool publishing `{prefix}.pool_miss` (counter) and
    /// `{prefix}.bytes_pooled` (gauge) into `registry`.
    pub fn with_metrics(max_idle: usize, registry: &MetricsRegistry, prefix: &str) -> Self {
        Self {
            inner: Arc::new(Inner {
                free: Mutex::new(Vec::with_capacity(max_idle.min(1024))),
                max_idle,
                misses: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                idle_bytes: AtomicU64::new(0),
                miss_counter: Some(registry.counter(&format!("{prefix}.pool_miss"))),
                pooled_gauge: Some(registry.gauge(&format!("{prefix}.bytes_pooled"))),
            }),
        }
    }

    /// Take a buffer: recycled when one is idle, freshly `Default`-built
    /// (a *miss*) when the free list is empty. The buffer rides inside a
    /// [`Pooled`] guard and returns to this pool when the guard drops.
    pub fn get(&self) -> Pooled<T> {
        let popped = {
            let mut free = self.inner.free.lock().expect("buffer pool poisoned");
            let popped = free.pop();
            if let Some(v) = &popped {
                self.inner.sub_idle_bytes(v.heap_bytes() as u64);
            }
            popped
        };
        let value = match popped {
            Some(v) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &self.inner.miss_counter {
                    c.inc();
                }
                T::default()
            }
        };
        Pooled {
            value: Some(value),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Pool misses so far (each one allocated a fresh buffer).
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Pool hits so far (each one reused a recycled buffer).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Buffers currently idle on the free list.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().expect("buffer pool poisoned").len()
    }

    /// Heap bytes currently held by idle buffers.
    pub fn idle_bytes(&self) -> u64 {
        self.inner.idle_bytes.load(Ordering::Relaxed)
    }

    /// Pre-populate the free list with `n` buffers shaped by `make`, so
    /// the first `n` [`get`](Self::get)s hit instead of miss.
    pub fn warm(&self, n: usize, mut make: impl FnMut() -> T) {
        let mut free = self.inner.free.lock().expect("buffer pool poisoned");
        let mut added = 0u64;
        for _ in 0..n.min(self.inner.max_idle.saturating_sub(free.len())) {
            let v = make();
            added += v.heap_bytes() as u64;
            free.push(v);
        }
        self.inner.add_idle_bytes(added);
        drop(free);
    }
}

/// An RAII guard around a pooled buffer: derefs to the buffer, and on
/// drop [`reset`](Recycle::reset)s it and pushes it back onto the free
/// list (unless the list is already at `max_idle`, in which case the
/// buffer is simply freed).
pub struct Pooled<T: Recycle> {
    value: Option<T>,
    pool: Arc<Inner<T>>,
}

impl<T: Recycle> Pooled<T> {
    /// Detach the buffer from the pool; it will not be recycled.
    pub fn into_inner(mut self) -> T {
        self.value.take().expect("pooled value already taken")
    }
}

impl<T: Recycle> Deref for Pooled<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value.as_ref().expect("pooled value already taken")
    }
}

impl<T: Recycle> DerefMut for Pooled<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("pooled value already taken")
    }
}

impl<T: Recycle + std::fmt::Debug> std::fmt::Debug for Pooled<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.value.fmt(f)
    }
}

impl<T: Recycle> Drop for Pooled<T> {
    fn drop(&mut self) {
        let Some(mut v) = self.value.take() else {
            return;
        };
        v.reset();
        let bytes = v.heap_bytes() as u64;
        let mut free = match self.pool.free.lock() {
            Ok(g) => g,
            Err(_) => return, // poisoned pool: just free the buffer
        };
        if free.len() < self.pool.max_idle {
            free.push(v);
            self.pool.add_idle_bytes(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_recycles_capacity() {
        let pool: BufferPool<Vec<f64>> = BufferPool::new(4);
        let ptr = {
            let mut b = pool.get();
            b.extend_from_slice(&[1.0; 100]);
            b.as_ptr() as usize
        };
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.idle(), 1);
        let b = pool.get();
        assert_eq!(pool.hits(), 1);
        assert!(b.is_empty(), "recycled buffer must be reset");
        assert!(b.capacity() >= 100, "recycled buffer keeps capacity");
        assert_eq!(b.as_ptr() as usize, ptr, "same backing storage");
    }

    #[test]
    fn max_idle_caps_the_free_list() {
        let pool: BufferPool<Vec<u8>> = BufferPool::new(2);
        let a = pool.get();
        let b = pool.get();
        let c = pool.get();
        drop(a);
        drop(b);
        drop(c); // third return exceeds max_idle and is freed
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn idle_bytes_tracks_capacity() {
        let pool: BufferPool<Vec<f64>> = BufferPool::new(4);
        {
            let mut b = pool.get();
            b.reserve_exact(64);
        }
        assert!(pool.idle_bytes() >= 64 * 8);
        let _b = pool.get();
        assert_eq!(pool.idle_bytes(), 0);
    }

    #[test]
    fn metrics_wiring_publishes_miss_and_bytes() {
        let registry = MetricsRegistry::new();
        let pool: BufferPool<Vec<u8>> = BufferPool::with_metrics(4, &registry, "test");
        {
            let mut b = pool.get();
            b.extend_from_slice(&[0u8; 32]);
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.pool_miss"), Some(1));
        assert!(snap.gauge("test.bytes_pooled").unwrap_or(0) >= 32);
    }

    #[test]
    fn warm_prefills_and_into_inner_detaches() {
        let pool: BufferPool<Vec<u8>> = BufferPool::new(8);
        pool.warm(3, || Vec::with_capacity(16));
        assert_eq!(pool.idle(), 3);
        let b = pool.get();
        assert_eq!(pool.misses(), 0);
        let v = b.into_inner();
        assert!(v.capacity() >= 16);
        assert_eq!(pool.idle(), 2, "detached buffer never returns");
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool: BufferPool<Vec<f64>> = BufferPool::new(64);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        let mut b = pool.get();
                        b.push(i as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.idle() <= 64);
        assert_eq!(pool.hits() + pool.misses(), 4000);
        // Drain the free list through detaching gets: the idle-byte
        // accounting must land exactly on zero. A wrapped counter (the
        // pop/return race this test hammers) would be astronomically
        // large here instead.
        while pool.idle() > 0 {
            let _ = pool.get().into_inner();
        }
        assert_eq!(pool.idle_bytes(), 0, "idle-byte accounting drifted");
    }
}

//! The two error measures contrasted in §2.2 of the paper.
//!
//! The paper evaluates *relative error* throughout, because rank error
//! understates the practical error at the tail of long-tailed distributions
//! (Fig. 1). Both measures are provided so experiments and tests can report
//! either.

use crate::rank::rank_of;

/// Relative error of an estimate `x̂_q` against the true quantile value
/// `x_q` (§2.2):
///
/// ```text
/// |x_q - x̂_q| / x_q
/// ```
///
/// The paper's worked example: true 0.9-quantile 30, estimate 18 →
/// relative error 0.4.
#[inline]
pub fn relative_error(true_value: f64, estimate: f64) -> f64 {
    if true_value == 0.0 {
        // Degenerate but possible with synthetic data; fall back to the
        // absolute error so a perfect estimate still scores 0.
        return (true_value - estimate).abs();
    }
    ((true_value - estimate) / true_value).abs()
}

/// Rank error of an estimate for the `q`-quantile (§2.2):
///
/// ```text
/// |q - Rank(x̂_q)/N|
/// ```
///
/// `sorted` must be the fully sorted data set.
///
/// The paper's worked example: on Table 1's data, estimating 18 for the
/// 0.9-quantile is a rank error of 0.1.
#[inline]
pub fn rank_error(sorted: &[f64], q: f64, estimate: f64) -> f64 {
    let n = sorted.len();
    assert!(n > 0, "rank error over empty data set");
    (q - rank_of(sorted, estimate) as f64 / n as f64).abs()
}

/// Aggregates relative errors over repeated measurements, exposing the mean
/// and the half-width of a 95 % confidence interval — the error bars the
/// paper draws on every accuracy graph (§4.2).
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    samples: Vec<f64>,
}

impl ErrorStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one error observation.
    pub fn record(&mut self, err: f64) {
        self.samples.push(err);
    }

    /// Number of observations recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean error.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (Bessel-corrected).
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the 95 % confidence interval around the mean, using the
    /// normal approximation (1.96 σ/√n) as is standard for the paper's 10
    /// independent runs.
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (n as f64).sqrt()
    }

    /// Merge another accumulator's observations into this one.
    pub fn absorb(&mut self, other: &ErrorStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE1: [f64; 10] = [3.0, 6.0, 8.0, 9.0, 11.0, 15.0, 16.0, 18.0, 30.0, 51.0];

    #[test]
    fn paper_worked_example_relative() {
        assert!((relative_error(30.0, 18.0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_rank() {
        assert!((rank_error(&TABLE1, 0.9, 18.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_is_symmetric_in_sign() {
        assert_eq!(relative_error(10.0, 12.0), relative_error(10.0, 8.0));
    }

    #[test]
    fn relative_error_zero_for_exact_estimate() {
        assert_eq!(relative_error(7.5, 7.5), 0.0);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn relative_error_with_zero_truth_uses_absolute() {
        assert_eq!(relative_error(0.0, 0.25), 0.25);
    }

    #[test]
    fn rank_error_zero_when_rank_matches() {
        // 30 is rank 9 out of 10 -> exactly the 0.9 quantile.
        assert_eq!(rank_error(&TABLE1, 0.9, 30.0), 0.0);
    }

    #[test]
    fn error_stats_mean_and_ci() {
        let mut s = ErrorStats::new();
        for e in [0.01, 0.02, 0.03, 0.02, 0.02] {
            s.record(e);
        }
        assert!((s.mean() - 0.02).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn error_stats_degenerate_cases() {
        let s = ErrorStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        let mut one = ErrorStats::new();
        one.record(0.5);
        assert_eq!(one.mean(), 0.5);
        assert_eq!(one.std_dev(), 0.0);
    }

    #[test]
    fn error_stats_absorb() {
        let mut a = ErrorStats::new();
        a.record(1.0);
        let mut b = ErrorStats::new();
        b.record(3.0);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }
}

//! One-call distribution snapshots: the "give me the whole percentile
//! profile" convenience that monitoring code wants from a sketch (the
//! paper's motivating applications — response-time dashboards, §1 —
//! query a grid of quantiles at once).

use std::fmt;

use crate::quantiles::QUERIED;
use crate::sketch::{QuantileSketch, QueryError};

/// A materialised quantile profile: the paper's eight-quantile grid (or a
/// custom one) evaluated against a sketch at a point in time.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Stream length at snapshot time.
    pub count: u64,
    /// `(q, estimate)` pairs, ascending in `q`.
    pub entries: Vec<(f64, f64)>,
}

impl Profile {
    /// Snapshot `sketch` at the paper's §4.2 quantile grid.
    pub fn standard<S: QuantileSketch>(sketch: &S) -> Result<Self, QueryError> {
        Self::at(sketch, &QUERIED)
    }

    /// Snapshot `sketch` at a custom ascending quantile grid.
    pub fn at<S: QuantileSketch>(sketch: &S, qs: &[f64]) -> Result<Self, QueryError> {
        let mut entries = Vec::with_capacity(qs.len());
        for &q in qs {
            entries.push((q, sketch.query(q)?));
        }
        Ok(Self {
            count: sketch.count(),
            entries,
        })
    }

    /// The estimate for quantile `q`, if it was part of the grid.
    pub fn get(&self, q: f64) -> Option<f64> {
        self.entries
            .iter()
            .find(|(pq, _)| *pq == q)
            .map(|(_, v)| *v)
    }

    /// Largest relative difference against another profile on the shared
    /// grid — a cheap drift detector between window snapshots.
    pub fn max_relative_shift(&self, other: &Profile) -> f64 {
        let mut worst = 0.0f64;
        for (q, v) in &self.entries {
            if let Some(o) = other.get(*q) {
                let denom = v.abs().max(f64::MIN_POSITIVE);
                worst = worst.max((v - o).abs() / denom);
            }
        }
        worst
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "n={}", self.count)?;
        for (q, v) in &self.entries {
            writeln!(f, "  p{:<5} {v}", q * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSketch;

    fn ramp(n: u64) -> ExactSketch {
        let mut s = ExactSketch::new();
        for i in 1..=n {
            s.insert(i as f64);
        }
        s
    }

    #[test]
    fn standard_profile_uses_paper_grid() {
        let s = ramp(1000);
        let p = Profile::standard(&s).unwrap();
        assert_eq!(p.count, 1000);
        assert_eq!(p.entries.len(), 8);
        assert_eq!(p.get(0.5), Some(500.0));
        assert_eq!(p.get(0.99), Some(990.0));
        assert_eq!(p.get(0.123), None);
    }

    #[test]
    fn custom_grid() {
        let s = ramp(100);
        let p = Profile::at(&s, &[0.1, 1.0]).unwrap();
        assert_eq!(p.entries, vec![(0.1, 10.0), (1.0, 100.0)]);
    }

    #[test]
    fn empty_sketch_propagates_error() {
        let s = ExactSketch::new();
        assert!(Profile::standard(&s).is_err());
    }

    #[test]
    fn shift_detector() {
        let a = Profile::standard(&ramp(1000)).unwrap();
        let mut shifted = ramp(1000);
        for _ in 0..1000 {
            shifted.insert(10_000.0);
        }
        let b = Profile::standard(&shifted).unwrap();
        assert!(a.max_relative_shift(&a) < 1e-12);
        assert!(a.max_relative_shift(&b) > 1.0, "upper quantiles exploded");
    }

    #[test]
    fn display_renders_every_row() {
        let p = Profile::standard(&ramp(10)).unwrap();
        let text = p.to_string();
        assert!(text.contains("n=10"));
        assert!(text.contains("p99"));
    }
}

//! The v3 *flatwire* layout: compressed sketch payloads that answer
//! quantile queries directly from borrowed bytes.
//!
//! Version 3 of every sketch payload (FORMATS.md §3) is built from three
//! primitives defined here:
//!
//! * **prefix varints** ([`write_uvarint`] / [`FlatReader::uvarint`]) — the
//!   byte length is recoverable from the *first* byte alone, so a decoder
//!   never over-reads and a corrupted length cannot make it allocate,
//! * **zigzag mapping** ([`zigzag`] / [`unzigzag`]) for signed bucket
//!   indices,
//! * **the ordered-`f64` bijection** ([`ordered_from_f64`] /
//!   [`f64_from_ordered`]) — a monotone map from `f64` (IEEE-754 total
//!   order) to `u64`, so a *sorted* array of doubles becomes a
//!   non-decreasing `u64` sequence whose deltas are non-negative and
//!   varint-friendly.
//!
//! On top of those sit two run codecs — [`write_sorted_run`] /
//! [`SortedRunCursor`] for KLL/REQ level arrays and [`write_bucket_run`] /
//! [`BucketRunCursor`] for DDSketch/UDDSketch `(index, count)` stores —
//! plus [`WeightedMergeWalk`], a fixed-capacity (≤ 64 levels, stack-only)
//! k-way merge that evaluates a cumulative rank over many sorted runs
//! without decoding them into heap memory.
//!
//! The [`SketchView`] trait ties it together: a sketch that implements it
//! can answer `count`, `bounds`, and `quantile` straight from a serialized
//! payload. For v1/v2 payloads implementations fall back to
//! decode-then-query (see [`quantile_via_decode`]), so every historical
//! byte stream keeps answering.
//!
//! All decode paths use checked arithmetic and typed [`DecodeError`]s —
//! hostile bytes must never panic or allocate proportionally to a
//! declared (unverified) length.
//!
//! # Example
//!
//! ```
//! use qsketch_core::flatwire::{write_sorted_run, SortedRunCursor};
//!
//! let values = [0.5, -3.25, 11.0, 0.5];
//! let mut buf = Vec::new();
//! write_sorted_run(&mut buf, &values);
//!
//! let mut cursor = SortedRunCursor::new(&buf, values.len() as u64);
//! let mut decoded = Vec::new();
//! while let Some(v) = cursor.next().unwrap() {
//!     decoded.push(v);
//! }
//! // The run comes back sorted ascending, bit-for-bit.
//! assert_eq!(decoded, vec![-3.25, 0.5, 0.5, 11.0]);
//! ```

use crate::codec::DecodeError;
use crate::sketch::{QuantileSketch, SketchError};
use crate::SketchSerialize;

/// Hard cap on the number of runs a [`WeightedMergeWalk`] accepts.
///
/// Matches the deepest level structure any sketch in the workspace can
/// produce (KLL and REQ both cap at 64 levels), and bounds the walk's
/// stack footprint.
pub const MAX_WALK_LEVELS: usize = 64;

// ---------------------------------------------------------------------------
// Prefix varints
// ---------------------------------------------------------------------------

/// Append `v` to `out` as a prefix varint (1–9 bytes).
///
/// An `n`-byte encoding (`n ≤ 8`) stores the value shifted left by `n`
/// bits, with the low `n − 1` bits of the first byte set to one followed
/// by a zero bit — so `first_byte.trailing_ones() + 1` recovers the
/// length without touching later bytes. Values ≥ 2⁵⁶ use the 9-byte
/// escape: a `0xFF` marker followed by the raw little-endian `u64`.
/// Encoders always emit the minimal length.
///
/// ```
/// use qsketch_core::flatwire::write_uvarint;
///
/// let mut buf = Vec::new();
/// write_uvarint(&mut buf, 5);      // 1 byte
/// write_uvarint(&mut buf, 300);    // 2 bytes
/// write_uvarint(&mut buf, u64::MAX); // 9 bytes
/// assert_eq!(buf.len(), 1 + 2 + 9);
/// ```
pub fn write_uvarint(out: &mut Vec<u8>, v: u64) {
    let bits = 64 - u64::leading_zeros(v | 1) as usize;
    let n = bits.div_ceil(7);
    if n > 8 {
        out.push(0xFF);
        out.extend_from_slice(&v.to_le_bytes());
        return;
    }
    let tagged = (v << n) | ((1u64 << (n - 1)) - 1);
    out.extend_from_slice(&tagged.to_le_bytes()[..n]);
}

/// Append `v` to `out` as a zigzag-mapped prefix varint.
///
/// ```
/// use qsketch_core::flatwire::{write_ivarint, FlatReader};
///
/// let mut buf = Vec::new();
/// write_ivarint(&mut buf, -7);
/// assert_eq!(FlatReader::new(&buf).ivarint().unwrap(), -7);
/// ```
pub fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag(v));
}

/// Append an `f64` to `out` as its 8 raw little-endian bytes.
///
/// ```
/// use qsketch_core::flatwire::{write_f64, FlatReader};
///
/// let mut buf = Vec::new();
/// write_f64(&mut buf, -0.125);
/// assert_eq!(FlatReader::new(&buf).f64().unwrap(), -0.125);
/// ```
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Map a signed integer onto the unsigned line so small magnitudes of
/// either sign get short varints: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
///
/// ```
/// use qsketch_core::flatwire::{zigzag, unzigzag};
///
/// assert_eq!(zigzag(0), 0);
/// assert_eq!(zigzag(-1), 1);
/// assert_eq!(zigzag(1), 2);
/// assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
/// ```
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Map an `f64` to a `u64` that preserves IEEE-754 total order:
/// `a ≤ b ⟹ ordered_from_f64(a) ≤ ordered_from_f64(b)`.
///
/// Negative values flip all bits; non-negative values set the sign bit.
/// Sorting by this key instead of `partial_cmp` gives the wire format a
/// *total* order (`-0.0` sorts before `+0.0`), so deltas between
/// consecutive sorted values are always non-negative.
///
/// ```
/// use qsketch_core::flatwire::{ordered_from_f64, f64_from_ordered};
///
/// assert!(ordered_from_f64(-1.0) < ordered_from_f64(-0.0));
/// assert!(ordered_from_f64(-0.0) < ordered_from_f64(0.0));
/// assert!(ordered_from_f64(0.0) < ordered_from_f64(f64::INFINITY));
/// let x = -123.456;
/// assert_eq!(f64_from_ordered(ordered_from_f64(x)).to_bits(), x.to_bits());
/// ```
#[inline]
pub fn ordered_from_f64(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`ordered_from_f64`].
#[inline]
pub fn f64_from_ordered(u: u64) -> f64 {
    f64::from_bits(if u >> 63 == 1 { u & !(1 << 63) } else { !u })
}

// ---------------------------------------------------------------------------
// FlatReader
// ---------------------------------------------------------------------------

/// Allocation-free cursor over a flatwire byte slice.
///
/// Unlike [`crate::codec::Reader`] (the LEB128 v1/v2 reader) this reader
/// speaks the prefix-varint dialect and performs no header handling —
/// sketch decoders sniff magic/version themselves and hand the payload
/// tail to a `FlatReader`.
///
/// ```
/// use qsketch_core::flatwire::{write_uvarint, write_f64, FlatReader};
///
/// let mut buf = Vec::new();
/// write_uvarint(&mut buf, 42);
/// write_f64(&mut buf, 2.5);
/// let mut r = FlatReader::new(&buf);
/// assert_eq!(r.uvarint().unwrap(), 42);
/// assert_eq!(r.f64().unwrap(), 2.5);
/// assert!(r.expect_exhausted().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct FlatReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FlatReader<'a> {
    /// Wrap a byte slice, starting at offset zero.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a prefix varint (see [`write_uvarint`] for the layout).
    pub fn uvarint(&mut self) -> Result<u64, DecodeError> {
        let first = self.bytes.get(self.pos).copied().ok_or(DecodeError::UnexpectedEnd)?;
        let n = first.trailing_ones() as usize + 1;
        if n == 9 {
            self.pos += 1;
            return self.u64();
        }
        let raw = self.take(n)?;
        let mut buf = [0u8; 8];
        buf[..n].copy_from_slice(raw);
        Ok(u64::from_le_bytes(buf) >> n)
    }

    /// Read a zigzag-mapped prefix varint.
    pub fn ivarint(&mut self) -> Result<i64, DecodeError> {
        Ok(unzigzag(self.uvarint()?))
    }

    /// Borrow the next `n` bytes without copying.
    pub fn slice(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Error with [`DecodeError::Corrupt`] if any bytes remain.
    pub fn expect_exhausted(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sorted f64 runs (KLL / REQ level arrays)
// ---------------------------------------------------------------------------

/// Append a delta-compressed sorted run of `f64` values to `out`.
///
/// The values are sorted by [`ordered_from_f64`] (IEEE-754 total order —
/// the caller need not pre-sort), then written as the first value's
/// ordered bits followed by `len − 1` non-negative deltas, all prefix
/// varints. The count is *not* stored — the enclosing layout carries it
/// (KLL/REQ per-level headers), which is what lets
/// [`WeightedMergeWalk`] skip runs without parsing them.
///
/// An empty slice writes nothing.
pub fn write_sorted_run(out: &mut Vec<u8>, values: &[f64]) {
    let mut ordered: Vec<u64> = values.iter().map(|&v| ordered_from_f64(v)).collect();
    ordered.sort_unstable();
    let mut prev = 0u64;
    for (i, &u) in ordered.iter().enumerate() {
        if i == 0 {
            write_uvarint(out, u);
        } else {
            write_uvarint(out, u - prev);
        }
        prev = u;
    }
}

/// Streaming decoder for a [`write_sorted_run`] payload.
///
/// Yields the values in ascending order with zero heap allocation. The
/// expected count comes from the enclosing layout; a run that ends early
/// yields [`DecodeError::UnexpectedEnd`], and a delta that overflows the
/// ordered-`u64` line yields [`DecodeError::Corrupt`].
#[derive(Debug, Clone)]
pub struct SortedRunCursor<'a> {
    reader: FlatReader<'a>,
    remaining: u64,
    prev: u64,
    started: bool,
}

impl<'a> SortedRunCursor<'a> {
    /// Decode `count` values from `bytes` (which may extend past the run;
    /// excess bytes are simply never read).
    pub fn new(bytes: &'a [u8], count: u64) -> Self {
        Self {
            reader: FlatReader::new(bytes),
            remaining: count,
            prev: 0,
            started: false,
        }
    }

    /// Next value in ascending order, or `Ok(None)` when the run is done.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<f64>, DecodeError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let delta = self.reader.uvarint()?;
        let u = if self.started {
            self.prev
                .checked_add(delta)
                .ok_or_else(|| DecodeError::Corrupt("sorted-run delta overflow".into()))?
        } else {
            self.started = true;
            delta
        };
        self.prev = u;
        self.remaining -= 1;
        Ok(Some(f64_from_ordered(u)))
    }

    /// Bytes consumed from the underlying slice so far. Decoders use this
    /// to verify a run filled exactly the byte length its header declared.
    pub fn bytes_read(&self) -> usize {
        self.reader.pos
    }
}

// ---------------------------------------------------------------------------
// Bucket runs (DDSketch / UDDSketch stores)
// ---------------------------------------------------------------------------

/// Which way the bucket indices of a run move.
///
/// Negative-value stores are written highest-index-first so a quantile
/// walk visits buckets in ascending *value* order in a single pass;
/// positive stores are written ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunDirection {
    /// Indices strictly increase along the run.
    Ascending,
    /// Indices strictly decrease along the run.
    Descending,
}

/// Append a delta-compressed `(bucket index, count)` run to `out`.
///
/// The first index is zigzag-encoded; each subsequent index is stored as
/// the (positive) magnitude of its step in the run's direction. Counts
/// are plain prefix varints. Buckets must already be ordered per
/// `direction` with strictly monotone indices and non-zero counts —
/// encoders iterate sorted map stores, so both hold by construction.
///
/// ```
/// use qsketch_core::flatwire::{write_bucket_run, BucketRunCursor, RunDirection};
///
/// let buckets = [(-3, 7u64), (0, 1), (12, 2)];
/// let mut buf = Vec::new();
/// write_bucket_run(&mut buf, &buckets);
/// let mut cursor = BucketRunCursor::new(&buf, 3, RunDirection::Ascending, 1 << 22);
/// assert_eq!(cursor.next().unwrap(), Some((-3, 7)));
/// assert_eq!(cursor.next().unwrap(), Some((0, 1)));
/// assert_eq!(cursor.next().unwrap(), Some((12, 2)));
/// assert_eq!(cursor.next().unwrap(), None);
/// ```
pub fn write_bucket_run(out: &mut Vec<u8>, buckets: &[(i32, u64)]) {
    let mut prev: i64 = 0;
    for (i, &(index, count)) in buckets.iter().enumerate() {
        let index = i64::from(index);
        if i == 0 {
            write_ivarint(out, index);
        } else {
            write_uvarint(out, index.abs_diff(prev));
        }
        write_uvarint(out, count);
        prev = index;
    }
}

/// Streaming decoder for a [`write_bucket_run`] payload.
///
/// Yields `(index, count)` pairs with zero heap allocation. Every decoded
/// index is validated against `max_abs_index` so a hostile delta cannot
/// walk the index off the sketch's legal range, and every count must be
/// non-zero.
#[derive(Debug, Clone)]
pub struct BucketRunCursor<'a> {
    reader: FlatReader<'a>,
    remaining: u64,
    direction: RunDirection,
    max_abs_index: i64,
    prev: i64,
    started: bool,
}

impl<'a> BucketRunCursor<'a> {
    /// Decode `count` buckets moving in `direction`, rejecting any index
    /// with magnitude above `max_abs_index`.
    pub fn new(bytes: &'a [u8], count: u64, direction: RunDirection, max_abs_index: i64) -> Self {
        Self {
            reader: FlatReader::new(bytes),
            remaining: count,
            direction,
            max_abs_index,
            prev: 0,
            started: false,
        }
    }

    /// Next `(index, count)` pair, or `Ok(None)` when the run is done.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(i32, u64)>, DecodeError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let index = if self.started {
            let step = self.reader.uvarint()?;
            let step = i64::try_from(step)
                .map_err(|_| DecodeError::Corrupt("bucket-run step overflow".into()))?;
            let next = match self.direction {
                RunDirection::Ascending => self.prev.checked_add(step),
                RunDirection::Descending => self.prev.checked_sub(step),
            };
            next.ok_or_else(|| DecodeError::Corrupt("bucket-run index overflow".into()))?
        } else {
            self.started = true;
            self.reader.ivarint()?
        };
        if index.abs() > self.max_abs_index {
            return Err(DecodeError::Corrupt(format!(
                "bucket index {index} outside ±{}",
                self.max_abs_index
            )));
        }
        let count = self.reader.uvarint()?;
        if count == 0 {
            return Err(DecodeError::Corrupt("zero-count bucket in run".into()));
        }
        self.prev = index;
        self.remaining -= 1;
        Ok(Some((index as i32, count)))
    }

    /// Bytes consumed from the underlying slice so far.
    pub fn bytes_read(&self) -> usize {
        self.reader.pos
    }
}

// ---------------------------------------------------------------------------
// Weighted k-way merge walk
// ---------------------------------------------------------------------------

struct WalkLevel<'a> {
    cursor: SortedRunCursor<'a>,
    weight: u64,
    /// Next value this level will contribute (primed ahead of selection).
    head: f64,
}

/// Stack-only k-way merge over weighted sorted runs, used to evaluate a
/// cumulative rank across KLL/REQ levels without materializing the
/// merged array.
///
/// Push up to [`MAX_WALK_LEVELS`] runs, each with a per-item weight
/// (`1 << level` for the compactor hierarchies), then call
/// [`value_at_rank`](Self::value_at_rank). The walk repeatedly takes the
/// smallest head value among the runs and accumulates its weight; the
/// first value whose cumulative weight reaches the target rank is the
/// answer — exactly the semantics of the in-memory sorted views.
///
/// ```
/// use qsketch_core::flatwire::{write_sorted_run, SortedRunCursor, WeightedMergeWalk};
///
/// let (lo, hi) = ([1.0, 3.0], [2.0]);
/// let (mut a, mut b) = (Vec::new(), Vec::new());
/// write_sorted_run(&mut a, &lo);
/// write_sorted_run(&mut b, &hi);
///
/// let mut walk = WeightedMergeWalk::new();
/// walk.push(SortedRunCursor::new(&a, 2), 1).unwrap();
/// walk.push(SortedRunCursor::new(&b, 1), 2).unwrap();
/// // Merged weighted stream: 1.0(w1), 2.0(w2), 3.0(w1) — total weight 4.
/// assert_eq!(walk.value_at_rank(2).unwrap(), 2.0);
/// ```
pub struct WeightedMergeWalk<'a> {
    levels: [Option<WalkLevel<'a>>; MAX_WALK_LEVELS],
    len: usize,
}

impl<'a> WeightedMergeWalk<'a> {
    /// Create an empty walk.
    pub fn new() -> Self {
        Self {
            levels: std::array::from_fn(|_| None),
            len: 0,
        }
    }

    /// Add a run whose items all carry `weight`. Empty runs are skipped.
    ///
    /// Fails with [`DecodeError::Corrupt`] if more than
    /// [`MAX_WALK_LEVELS`] non-empty runs are pushed, and propagates any
    /// decode error from priming the run's first value.
    pub fn push(&mut self, mut cursor: SortedRunCursor<'a>, weight: u64) -> Result<(), DecodeError> {
        let Some(head) = cursor.next()? else {
            return Ok(());
        };
        if self.len == MAX_WALK_LEVELS {
            return Err(DecodeError::Corrupt(format!(
                "more than {MAX_WALK_LEVELS} runs in merge walk"
            )));
        }
        self.levels[self.len] = Some(WalkLevel {
            cursor,
            weight,
            head,
        });
        self.len += 1;
        Ok(())
    }

    /// Consume the walk and return the value whose cumulative weight first
    /// reaches `rank` (1-based; the caller clamps it to `[1, total]`).
    ///
    /// Fails with [`DecodeError::Corrupt`] if the runs exhaust before the
    /// rank is reached — that means the declared level counts disagree
    /// with the rank the caller derived from them.
    pub fn value_at_rank(mut self, rank: u64) -> Result<f64, DecodeError> {
        let mut cum = 0u64;
        loop {
            // Select the level holding the smallest head value. Ties pick
            // the first such level — the tied values are identical, so
            // the returned value is unaffected.
            let mut best: Option<usize> = None;
            for i in 0..self.len {
                if let Some(level) = &self.levels[i] {
                    match best {
                        Some(b) => {
                            let b_head = self.levels[b].as_ref().expect("live level").head;
                            if level.head < b_head {
                                best = Some(i);
                            }
                        }
                        None => best = Some(i),
                    }
                }
            }
            let Some(i) = best else {
                return Err(DecodeError::Corrupt(
                    "merge walk exhausted before rank".into(),
                ));
            };
            let level = self.levels[i].as_mut().expect("selected level");
            let value = level.head;
            cum = cum.saturating_add(level.weight);
            if cum >= rank {
                return Ok(value);
            }
            match level.cursor.next()? {
                Some(next) => level.head = next,
                None => self.levels[i] = None,
            }
        }
    }
}

impl Default for WeightedMergeWalk<'_> {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// SketchView
// ---------------------------------------------------------------------------

/// Answer queries directly from a serialized sketch payload.
///
/// Implementations must return **bit-identical** results to decoding the
/// same bytes and querying the rebuilt sketch — that equivalence is
/// enforced by property tests for every sketch in the workspace. For v3
/// (flatwire) payloads the evaluation runs over the borrowed bytes with
/// no heap allocation (exception: Moments, whose maximum-entropy solver
/// allocates scratch — documented in FORMATS.md §3.6); v1/v2 payloads
/// transparently fall back to decode-then-query.
///
/// ```
/// use qsketch_core::{QuantileSketch, SketchSerialize};
/// use qsketch_core::flatwire::SketchView;
/// use qsketch_kll::KllSketch;
///
/// let mut sketch = KllSketch::new(200);
/// for i in 0..1000 {
///     sketch.insert(i as f64);
/// }
/// let bytes = sketch.encode();
/// let from_bytes = KllSketch::quantile_from_bytes(&bytes, 0.5).unwrap();
/// assert_eq!(from_bytes, sketch.query(0.5).unwrap());
/// assert_eq!(KllSketch::count_from_bytes(&bytes).unwrap(), 1000);
/// ```
pub trait SketchView: SketchSerialize {
    /// Total number of inserted values recorded in the payload.
    fn count_from_bytes(bytes: &[u8]) -> Result<u64, DecodeError>;

    /// The `(min, max)` bounds recorded in the payload. An empty sketch
    /// reports the sentinel `(+∞, −∞)` pair its in-memory counterpart
    /// carries.
    fn bounds_from_bytes(bytes: &[u8]) -> Result<(f64, f64), DecodeError>;

    /// Evaluate the `q`-quantile against the payload, bit-identical to
    /// `Self::decode(bytes)?.query(q)`.
    fn quantile_from_bytes(bytes: &[u8], q: f64) -> Result<f64, SketchError>;
}

/// Read the `(magic, version)` header every sketch payload and envelope
/// starts with, without validating either.
///
/// Used by [`SketchView`] implementations to route v1/v2 payloads to the
/// decode-then-query fallback and v3 payloads to the flat evaluator.
///
/// ```
/// use qsketch_core::flatwire::wire_header;
///
/// assert_eq!(wire_header(&[0xA1, 0x03, 0x55]).unwrap(), (0xA1, 3));
/// assert!(wire_header(&[0xA1]).is_err());
/// ```
pub fn wire_header(bytes: &[u8]) -> Result<(u8, u8), DecodeError> {
    match bytes {
        [magic, version, ..] => Ok((*magic, *version)),
        _ => Err(DecodeError::UnexpectedEnd),
    }
}

/// Decode-then-query fallback for pre-v3 payloads: rebuild the sketch and
/// evaluate the quantile on it.
///
/// ```
/// use qsketch_core::{QuantileSketch, SketchSerialize};
/// use qsketch_core::flatwire::quantile_via_decode;
/// use qsketch_moments::MomentsSketch;
///
/// let mut sketch = MomentsSketch::new(10);
/// for i in 1..=100 {
///     sketch.insert(i as f64);
/// }
/// let bytes = sketch.encode();
/// let expected = MomentsSketch::decode(&bytes).unwrap().query(0.5).unwrap();
/// assert_eq!(quantile_via_decode::<MomentsSketch>(&bytes, 0.5).unwrap(), expected);
/// ```
pub fn quantile_via_decode<S>(bytes: &[u8], q: f64) -> Result<f64, SketchError>
where
    S: SketchSerialize + QuantileSketch,
{
    let sketch = S::decode(bytes)?;
    Ok(sketch.query(q)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_uvarint(v: u64) {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, v);
        let mut r = FlatReader::new(&buf);
        assert_eq!(r.uvarint().unwrap(), v, "value {v}");
        assert!(r.expect_exhausted().is_ok(), "value {v} left bytes");
    }

    #[test]
    fn uvarint_roundtrips_across_boundaries() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            roundtrip_uvarint(v - 1);
            roundtrip_uvarint(v);
            roundtrip_uvarint(v | (v >> 1));
        }
        roundtrip_uvarint(u64::MAX);
    }

    #[test]
    fn uvarint_lengths_are_minimal() {
        let len = |v: u64| {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            buf.len()
        };
        assert_eq!(len(0), 1);
        assert_eq!(len(127), 1);
        assert_eq!(len(128), 2);
        assert_eq!(len((1 << 14) - 1), 2);
        assert_eq!(len(1 << 14), 3);
        assert_eq!(len((1 << 56) - 1), 8);
        assert_eq!(len(1 << 56), 9);
        assert_eq!(len(u64::MAX), 9);
    }

    #[test]
    fn uvarint_truncation_is_unexpected_end() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1 << 40);
        for cut in 0..buf.len() {
            let mut r = FlatReader::new(&buf[..cut]);
            assert_eq!(r.uvarint(), Err(DecodeError::UnexpectedEnd), "cut {cut}");
        }
    }

    #[test]
    fn zigzag_is_a_bijection_on_extremes() {
        for v in [0, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn ordered_f64_is_monotone() {
        let ordered = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for pair in ordered.windows(2) {
            assert!(
                ordered_from_f64(pair[0]) < ordered_from_f64(pair[1]),
                "{} !< {}",
                pair[0],
                pair[1]
            );
        }
        for v in ordered {
            assert_eq!(f64_from_ordered(ordered_from_f64(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sorted_run_roundtrips_and_sorts() {
        let values = [3.5, -2.0, 3.5, 0.0, -0.0, 1e-9];
        let mut buf = Vec::new();
        write_sorted_run(&mut buf, &values);
        let mut cursor = SortedRunCursor::new(&buf, values.len() as u64);
        let mut out = Vec::new();
        while let Some(v) = cursor.next().unwrap() {
            out.push(v);
        }
        let mut expected = values.to_vec();
        expected.sort_by_key(|&v| ordered_from_f64(v));
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&out), bits(&expected));
    }

    #[test]
    fn sorted_run_truncation_never_panics() {
        let values: Vec<f64> = (0..50).map(|i| i as f64 * 1.25).collect();
        let mut buf = Vec::new();
        write_sorted_run(&mut buf, &values);
        for cut in 0..buf.len() {
            let mut cursor = SortedRunCursor::new(&buf[..cut], values.len() as u64);
            let mut result = Ok(Some(0.0));
            while let Ok(Some(_)) = result {
                result = cursor.next();
            }
            assert!(result.is_err(), "cut {cut} decoded fully");
        }
    }

    #[test]
    fn bucket_run_roundtrips_both_directions() {
        let asc = [(-100, 3u64), (-99, 1), (5, 9), (2000, 2)];
        let mut buf = Vec::new();
        write_bucket_run(&mut buf, &asc);
        let mut cursor = BucketRunCursor::new(&buf, 4, RunDirection::Ascending, 1 << 22);
        for want in asc {
            assert_eq!(cursor.next().unwrap(), Some(want));
        }
        assert_eq!(cursor.next().unwrap(), None);

        let desc = [(2000, 2u64), (5, 9), (-99, 1), (-100, 3)];
        let mut buf = Vec::new();
        write_bucket_run(&mut buf, &desc);
        let mut cursor = BucketRunCursor::new(&buf, 4, RunDirection::Descending, 1 << 22);
        for want in desc {
            assert_eq!(cursor.next().unwrap(), Some(want));
        }
        assert_eq!(cursor.next().unwrap(), None);
    }

    #[test]
    fn bucket_run_rejects_out_of_range_and_zero_counts() {
        let mut buf = Vec::new();
        write_bucket_run(&mut buf, &[(1 << 23, 1)]);
        let mut cursor = BucketRunCursor::new(&buf, 1, RunDirection::Ascending, 1 << 22);
        assert!(matches!(cursor.next(), Err(DecodeError::Corrupt(_))));

        // Hand-craft a zero count: index 0, count 0.
        let mut buf = Vec::new();
        write_ivarint(&mut buf, 0);
        write_uvarint(&mut buf, 0);
        let mut cursor = BucketRunCursor::new(&buf, 1, RunDirection::Ascending, 1 << 22);
        assert!(matches!(cursor.next(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn bucket_run_overflowing_delta_is_corrupt() {
        // First index at the positive cap, then a huge ascending step.
        let mut buf = Vec::new();
        write_ivarint(&mut buf, i64::MAX);
        write_uvarint(&mut buf, 1);
        write_uvarint(&mut buf, u64::MAX);
        write_uvarint(&mut buf, 1);
        let mut cursor = BucketRunCursor::new(&buf, 2, RunDirection::Ascending, i64::MAX);
        // The first bucket decodes (cap is i64::MAX here)...
        assert!(cursor.next().is_ok());
        // ...and the follow-up step must fail checked addition, not wrap.
        assert!(matches!(cursor.next(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn merge_walk_matches_flat_merge() {
        // Three weighted runs; brute-force the merged weighted sequence.
        let runs: [(&[f64], u64); 3] = [
            (&[1.0, 4.0, 4.0, 9.0], 1),
            (&[2.0, 4.0, 10.0], 2),
            (&[0.5, 8.0], 4),
        ];
        let mut flat: Vec<(f64, u64)> = Vec::new();
        for (values, w) in runs {
            flat.extend(values.iter().map(|&v| (v, w)));
        }
        flat.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total: u64 = flat.iter().map(|&(_, w)| w).sum();

        let mut encoded = Vec::new();
        for (values, w) in runs {
            let mut buf = Vec::new();
            write_sorted_run(&mut buf, values);
            encoded.push((buf, values.len() as u64, w));
        }
        for rank in 1..=total {
            let mut cum = 0;
            let mut expected = f64::NAN;
            for &(v, w) in &flat {
                cum += w;
                if cum >= rank {
                    expected = v;
                    break;
                }
            }
            let mut walk = WeightedMergeWalk::new();
            for (buf, n, w) in &encoded {
                walk.push(SortedRunCursor::new(buf, *n), *w).unwrap();
            }
            assert_eq!(walk.value_at_rank(rank).unwrap(), expected, "rank {rank}");
        }
    }

    #[test]
    fn merge_walk_rank_past_total_is_corrupt() {
        let mut buf = Vec::new();
        write_sorted_run(&mut buf, &[1.0]);
        let mut walk = WeightedMergeWalk::new();
        walk.push(SortedRunCursor::new(&buf, 1), 1).unwrap();
        assert!(matches!(
            walk.value_at_rank(2),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn wire_header_reads_first_two_bytes() {
        assert_eq!(wire_header(&[0xD0, 1, 9, 9]).unwrap(), (0xD0, 1));
        assert_eq!(wire_header(&[0xD0]), Err(DecodeError::UnexpectedEnd));
        assert_eq!(wire_header(&[]), Err(DecodeError::UnexpectedEnd));
    }
}

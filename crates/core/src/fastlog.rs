//! Ln-free bucket indexing for the logarithmic sketches.
//!
//! DDSketch-family inserts spend most of their time in `x.ln()` — the index
//! of a positive value is `⌈log_γ x⌉ = ⌈ln x / ln γ⌉`, one transcendental
//! call per value. The production DataDog sketches avoid it by splitting the
//! IEEE-754 representation `x = m · 2^e` (so `log2 x = e + log2 m`) and
//! approximating `log2 m` over `m ∈ [1, 2)` with a cubic polynomial.
//!
//! The catch: an *approximate* logarithm rounds a value near a bucket edge
//! into the neighbouring bucket, which would break the hard requirement that
//! the batch insert kernels produce bit-identical sketch state to the scalar
//! `ln`-based path. [`FastCeilIndexer`] therefore pairs the polynomial with
//! a proven error band: when the approximate index lands within the
//! polynomial's error bound (in index units) of an integer it falls back to
//! the exact `ln` computation, otherwise no integer can sit between the
//! approximate and exact positions and the cheap ceiling is provably the
//! same. The result is an indexer that is bit-for-bit interchangeable with
//! `(x.ln() * inv_ln_gamma).ceil()`.
//!
//! Two polynomials live here. [`cubic_log2`] is DataDog's interpolating
//! cubic (max error ≈1.5e-3) — documented and tested as the baseline, but
//! at the paper's α = 0.01 its error band covers ≈11% of every bucket, so
//! ~11% of lookups would still pay `ln` *on top of* the polynomial, and the
//! unpredictable fallback branch costs nearly as much as `ln` itself.
//! [`poly_log2`] is a degree-7 fit with max error below
//! [`POLY_LOG2_MAX_ERROR`] = 1e-6: the fallback band shrinks to ~7e-5 of a
//! bucket, the branch becomes never-taken-and-perfectly-predicted, and the
//! whole of [`FastCeilIndexer::index_checked`] is straight-line arithmetic
//! a compiler can unroll and vectorize across a batch. The indexer uses
//! the degree-7 form.

/// Coefficients of the interpolating cubic for `log2(1 + s)`, `s ∈ [0, 1)`:
/// `P(s) = s·(C₂ + s·(C₁ + s·C₀))` with `C₀ = 6/35`, `C₁ = −3/5`,
/// `C₂ = 10/7`. `C₀ + C₁ + C₂ = 1`, so `P(0) = 0 = log2(1)` and
/// `P(1) = 1 = log2(2)`: the approximation is continuous (and, because the
/// derivative's discriminant is negative, strictly monotone) across octave
/// boundaries.
const C0: f64 = 6.0 / 35.0;
const C1: f64 = -3.0 / 5.0;
const C2: f64 = 10.0 / 7.0;

/// Bound on `|cubic_log2(x) − log2(x)|` for all positive normal `x`.
///
/// The analytic maximum of `|log2(1+s) − P(s)|` over `[0, 1]` is ≈1.47e-3
/// (attained near `s ≈ 0.84`); the constant adds ≈9% margin, which dwarfs
/// every floating-point rounding effect in the pipeline by many orders of
/// magnitude. The `cubic_log2_error_bound_exhaustive_grid` test asserts the
/// bound over a dense mantissa grid.
pub const CUBIC_LOG2_MAX_ERROR: f64 = 1.6e-3;

/// Cubic-interpolated `log2` via the IEEE-754 exponent/mantissa split.
///
/// `x` must be positive and *normal* (not subnormal, zero, infinite, or
/// NaN); the exponent-field extraction is meaningless otherwise — callers
/// route those cases to an exact path.
#[inline]
pub fn cubic_log2(x: f64) -> f64 {
    debug_assert!(
        x > 0.0 && x.is_normal(),
        "cubic_log2 requires a positive normal value, got {x}"
    );
    let bits = x.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    // Force the exponent field to 0 ⇒ mantissa m ∈ [1, 2); s = m − 1.
    let s = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000) - 1.0;
    exponent as f64 + s * (C2 + s * (C1 + s * C0))
}

/// Coefficients of the degree-7 fit of `log2(1 + s)` on `[0, 1]`, in the
/// constrained form `P(s) = s + s·(s−1)·Q(s)` (so `P(0) = 0` exactly and
/// `P(1) ≈ 1`, keeping octave boundaries tight), refitted by least squares
/// on a Chebyshev basis and expanded to monomials. `P1` is the `s¹`
/// coefficient; there is no constant term.
const P1: f64 = 1.442_683_183_316_250_3;
const P2: f64 = -0.720_802_623_196_930_3;
const P3: f64 = 0.474_498_246_713_935_5;
const P4: f64 = -0.327_566_854_654_588_24;
const P5: f64 = 0.195_366_903_133_106_06;
const P6: f64 = -0.079_468_246_890_484_11;
const P7: f64 = 0.015_289_391_578_710_695;

/// Bound on `|poly_log2(x) − log2(x)|` for all positive normal `x`.
///
/// The fit's maximum error over a 2-million-point grid is ≈7.72e-7
/// (attained near `s ≈ 0.487`); the constant adds ≈30% margin over that,
/// which dwarfs the few-ulp Horner rounding noise. The
/// `poly_log2_error_bound_exhaustive_grid` test asserts the bound over a
/// dense mantissa grid across octaves.
pub const POLY_LOG2_MAX_ERROR: f64 = 1.0e-6;

/// Degree-7 `log2` via the IEEE-754 exponent/mantissa split — the
/// precision tier [`FastCeilIndexer`] actually runs on.
///
/// Same contract as [`cubic_log2`]: `x` must be positive and normal;
/// callers route other cases to an exact path.
#[inline]
pub fn poly_log2(x: f64) -> f64 {
    debug_assert!(
        x > 0.0 && x.is_normal(),
        "poly_log2 requires a positive normal value, got {x}"
    );
    let bits = x.to_bits();
    let exponent = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let s = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000) - 1.0;
    let p = s * (P1 + s * (P2 + s * (P3 + s * (P4 + s * (P5 + s * (P6 + s * P7))))));
    exponent as f64 + p
}

/// `⌈log_γ x⌉` with the `ln` call elided whenever the polynomial approximation
/// is provably on the same side of every bucket edge as the exact value.
///
/// Bit-exactness contract: [`index`](Self::index) returns *the same `i32`*
/// as [`index_exact`](Self::index_exact) for every positive input —
/// verified by exhaustive-grid, bucket-edge, and property tests. The exact
/// form is `(x.ln() * inv_ln_gamma).ceil() as i32` with
/// `inv_ln_gamma = 1.0 / gamma.ln()`, the computation DDSketch and
/// UDDSketch have always used, so the fast path can be swapped into their
/// batch kernels without perturbing a single serialized byte.
#[derive(Debug, Clone, PartialEq)]
pub struct FastCeilIndexer {
    /// `1 / ln γ` — the exact path's multiplier.
    inv_ln_gamma: f64,
    /// `1 / log2 γ` — the fast path's multiplier.
    inv_log2_gamma: f64,
    /// [`POLY_LOG2_MAX_ERROR`] converted to index units: if the
    /// approximate index is farther than this from every integer, the
    /// exact index shares its ceiling.
    guard: f64,
}

impl FastCeilIndexer {
    /// Build an indexer for bucket base `gamma > 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 1.0, "gamma must exceed 1, got {gamma}");
        let inv_log2_gamma = 1.0 / gamma.log2();
        Self {
            inv_ln_gamma: 1.0 / gamma.ln(),
            inv_log2_gamma,
            guard: POLY_LOG2_MAX_ERROR * inv_log2_gamma,
        }
    }

    /// The cached `1 / ln γ` (exposed so sketches can report it).
    #[inline]
    pub fn inv_ln_gamma(&self) -> f64 {
        self.inv_ln_gamma
    }

    /// The reference index: `⌈ln x / ln γ⌉`, exactly as the scalar insert
    /// path computes it.
    #[inline]
    pub fn index_exact(&self, x: f64) -> i32 {
        (x.ln() * self.inv_ln_gamma).ceil() as i32
    }

    /// The speculative index, branch-free: the degree-7 `log2`, the γ
    /// rescale, and the ceiling — plus a flag saying whether the result is
    /// *proven* equal to [`index_exact`](Self::index_exact). The flag is
    /// set when the value's exponent field is degenerate (subnormal,
    /// infinite, NaN — the mantissa split does not hold) or the
    /// approximate index lands inside the error band of an integer, where
    /// the two paths could round to different buckets; outside the band
    /// they provably cannot. (`up == approx` — including every
    /// |approx| ≥ 2^52, where f64 has no fractional part — makes the first
    /// distance 0 and sets the flag.)
    ///
    /// Contains no branches and no libm calls — the ceiling is computed by
    /// truncate-and-adjust (`cvttsd2si` + compare) rather than `ceil()`,
    /// which is a library call on baseline x86-64 — so batch kernels can
    /// run it across a block of values (letting the compiler
    /// unroll/vectorize with plain SSE2), collect the flags, and re-do the
    /// flagged lanes — at the paper's α = 0.01 roughly 7 in 100 000
    /// values — via [`index_exact`](Self::index_exact).
    #[inline(always)]
    pub fn index_checked(&self, x: f64) -> (i32, bool) {
        let bits = x.to_bits();
        let biased_exp = ((bits >> 52) & 0x7ff) as i32;
        let e = (biased_exp - 1023) as f64;
        let s = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000) - 1.0;
        let p = s * (P1 + s * (P2 + s * (P3 + s * (P4 + s * (P5 + s * (P6 + s * P7))))));
        let approx = (e + p) * self.inv_log2_gamma;
        // ⌈approx⌉ without `ceil()`: truncate toward zero, bump when the
        // truncation landed below. Saturating casts make out-of-i32-range
        // values flag `needs_exact` (the exact path's `ceil() as i32`
        // saturates the same way, so the fallback stays bit-identical).
        let t = approx as i32;
        let up = t.wrapping_add((approx > t as f64) as i32);
        let upf = up as f64;
        let needs_exact = (biased_exp == 0)
            | (biased_exp == 0x7ff)
            | (approx.abs() >= 2_147_483_000.0)
            | (upf - approx < self.guard)
            | (approx - (upf - 1.0) < self.guard);
        (up, needs_exact)
    }

    /// The fast index: degree-7 `log2` plus the error-band fallback.
    /// Always equal to [`index_exact`](Self::index_exact).
    #[inline]
    pub fn index(&self, x: f64) -> i32 {
        debug_assert!(x > 0.0, "logarithmic indexing requires positive values");
        let (up, needs_exact) = self.index_checked(x);
        if needs_exact {
            return self.index_exact(x);
        }
        up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// γ values covering the paper's α range plus UDDSketch's collapsed
    /// (squared) bases.
    fn test_gammas() -> Vec<f64> {
        let mut gammas = Vec::new();
        for alpha in [0.001, 0.01, 0.05, 0.2] {
            let mut g: f64 = (1.0 + alpha) / (1.0 - alpha);
            for _ in 0..6 {
                gammas.push(g);
                g *= g; // UDDSketch collapse sequence
            }
        }
        gammas
    }

    #[test]
    fn cubic_log2_error_bound_exhaustive_grid() {
        // Dense mantissa grid across several octaves: the documented bound
        // must hold everywhere (it is what makes the fallback band sound).
        let mut worst = 0.0f64;
        for e in [-1022, -600, -53, -1, 0, 1, 52, 600, 1023] {
            let base = 2f64.powi(e);
            for k in 0..200_000u64 {
                let m = 1.0 + k as f64 / 200_000.0;
                let x = m * base;
                if !x.is_normal() {
                    continue;
                }
                let err = (cubic_log2(x) - x.log2()).abs();
                worst = worst.max(err);
            }
        }
        assert!(
            worst < CUBIC_LOG2_MAX_ERROR,
            "worst cubic error {worst} exceeds documented bound"
        );
        // The bound is tight-ish: the analytic max is ~1.47e-3.
        assert!(worst > 1.4e-3, "bound unexpectedly slack: worst {worst}");
    }

    #[test]
    fn poly_log2_error_bound_exhaustive_grid() {
        // Same grid as the cubic's test: the degree-7 bound is what sizes
        // the indexer's fallback band, so it must hold everywhere.
        let mut worst = 0.0f64;
        for e in [-1022, -600, -53, -1, 0, 1, 52, 600, 1023] {
            let base = 2f64.powi(e);
            for k in 0..200_000u64 {
                let m = 1.0 + k as f64 / 200_000.0;
                let x = m * base;
                if !x.is_normal() {
                    continue;
                }
                let err = (poly_log2(x) - x.log2()).abs();
                worst = worst.max(err);
            }
        }
        assert!(
            worst < POLY_LOG2_MAX_ERROR,
            "worst degree-7 error {worst} exceeds documented bound"
        );
        // The bound is tight-ish: the fit's max error is ~7.7e-7.
        assert!(worst > 5.0e-7, "bound unexpectedly slack: worst {worst}");
    }

    #[test]
    fn poly_log2_exact_at_powers_of_two() {
        // P has no constant term, so s = 0 evaluates to exactly 0.
        for e in [-100i32, -1, 0, 1, 10, 100] {
            assert_eq!(poly_log2(2f64.powi(e)), f64::from(e));
        }
    }

    #[test]
    fn index_checked_flag_is_sound() {
        // Wherever the flag is clear, the speculative index must already
        // equal the exact one (the flagged lanes are re-done by callers).
        for gamma in test_gammas() {
            let idx = FastCeilIndexer::new(gamma);
            let mut x = 1e-9;
            while x < 1e9 {
                let (fast, needs_exact) = idx.index_checked(x);
                if !needs_exact {
                    assert_eq!(fast, idx.index_exact(x), "gamma={gamma} x={x}");
                }
                x *= 1.000_91;
            }
        }
    }

    #[test]
    fn cubic_log2_exact_at_powers_of_two() {
        for e in [-100i32, -1, 0, 1, 10, 100] {
            assert_eq!(cubic_log2(2f64.powi(e)), f64::from(e));
        }
    }

    #[test]
    fn cubic_log2_monotone_within_and_across_octaves() {
        let mut prev = f64::NEG_INFINITY;
        for k in 0..400_000u64 {
            // Two octaves straddling the 2.0 boundary.
            let x = 1.0 + 3.0 * k as f64 / 400_000.0;
            let y = cubic_log2(x);
            assert!(y >= prev, "non-monotone at x={x}");
            prev = y;
        }
    }

    #[test]
    fn fast_index_matches_exact_on_multiplicative_sweep() {
        for gamma in test_gammas() {
            let idx = FastCeilIndexer::new(gamma);
            let mut x = 1e-12;
            while x < 1e12 {
                assert_eq!(idx.index(x), idx.index_exact(x), "gamma={gamma} x={x}");
                x *= 1.000_37;
            }
        }
    }

    #[test]
    fn fast_index_matches_exact_at_bucket_edges() {
        // Adversarial inputs: values packed around γ^i, where the ceiling
        // flips and the fallback band must catch the approximation.
        for gamma in test_gammas() {
            let idx = FastCeilIndexer::new(gamma);
            for i in [-800, -100, -3, -1, 0, 1, 2, 57, 911] {
                let edge = gamma.powi(i);
                if !edge.is_normal() {
                    continue;
                }
                let mut x = edge * (1.0 - 64.0 * f64::EPSILON);
                for _ in 0..129 {
                    assert_eq!(
                        idx.index(x),
                        idx.index_exact(x),
                        "gamma={gamma} edge γ^{i} x={x:e}"
                    );
                    x = f64::from_bits(x.to_bits() + 1);
                }
            }
        }
    }

    #[test]
    fn fast_index_matches_exact_on_subnormals_and_extremes() {
        let idx = FastCeilIndexer::new(1.02);
        for x in [
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MIN_POSITIVE,
            f64::MAX,
            1e-300,
            1e300,
            f64::INFINITY,
        ] {
            assert_eq!(idx.index(x), idx.index_exact(x), "x={x:e}");
        }
    }

    #[test]
    fn most_lookups_skip_ln_at_paper_alpha() {
        // Sanity on the design point: the degree-7 fallback band at
        // α = 0.01 covers ~2·1e-6/log2(γ) ≈ 7e-5 of each bucket, so
        // essentially every value of a smooth stream takes the ln-free
        // path and the fallback branch stays perfectly predicted.
        // Measured via the band width rather than instrumentation to keep
        // the hot path clean. (The cubic's band would be ≈11% — the
        // reason the indexer runs on the degree-7 polynomial.)
        let gamma: f64 = 1.02f64.powi(1); // ≈ paper γ
        let band = 2.0 * POLY_LOG2_MAX_ERROR / gamma.log2();
        assert!(band < 1e-3, "fallback band {band} too wide to be useful");
        let cubic_band = 2.0 * CUBIC_LOG2_MAX_ERROR / gamma.log2();
        assert!(cubic_band > 0.1, "cubic band {cubic_band} — doc out of date");
    }
}

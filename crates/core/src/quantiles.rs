//! The quantile sets and groupings used throughout the paper's evaluation
//! (§4.2): queried quantiles {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99},
//! grouped into *mid*, *upper*, and the separately reported 0.99.

/// All quantiles queried in the paper's experiments, ascending.
pub const QUERIED: [f64; 8] = [0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.98, 0.99];

/// The *mid* group: 0.05, 0.25, 0.5, 0.75, 0.9 (§4.2).
pub const MID: [f64; 5] = [0.05, 0.25, 0.5, 0.75, 0.9];

/// The *upper* group: 0.95 and 0.98 (§4.2).
pub const UPPER: [f64; 2] = [0.95, 0.98];

/// The separately reported 0.99 quantile (§4.2).
pub const P99: f64 = 0.99;

/// Which reporting group a quantile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantileGroup {
    /// 0.05 … 0.9.
    Mid,
    /// 0.95 and 0.98.
    Upper,
    /// 0.99, reported on its own.
    P99,
}

impl QuantileGroup {
    /// Group label as printed in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            QuantileGroup::Mid => "mid",
            QuantileGroup::Upper => "upper",
            QuantileGroup::P99 => "p99",
        }
    }

    /// All groups in reporting order.
    pub const ALL: [QuantileGroup; 3] =
        [QuantileGroup::Mid, QuantileGroup::Upper, QuantileGroup::P99];

    /// The quantiles belonging to this group.
    pub fn members(self) -> &'static [f64] {
        match self {
            QuantileGroup::Mid => &MID,
            QuantileGroup::Upper => &UPPER,
            QuantileGroup::P99 => std::slice::from_ref(&P99),
        }
    }
}

/// Classify one of the paper's queried quantiles into its reporting group.
///
/// Panics if `q` is not one of the eight queried quantiles — grouping other
/// quantiles would silently mis-bucket results.
pub fn group_of(q: f64) -> QuantileGroup {
    if MID.contains(&q) {
        QuantileGroup::Mid
    } else if UPPER.contains(&q) {
        QuantileGroup::Upper
    } else if q == P99 {
        QuantileGroup::P99
    } else {
        panic!("{q} is not one of the paper's queried quantiles");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_queried_set() {
        let mut covered: Vec<f64> = QuantileGroup::ALL
            .iter()
            .flat_map(|g| g.members().iter().copied())
            .collect();
        covered.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(covered, QUERIED.to_vec());
    }

    #[test]
    fn group_of_matches_paper_definitions() {
        assert_eq!(group_of(0.05), QuantileGroup::Mid);
        assert_eq!(group_of(0.9), QuantileGroup::Mid);
        assert_eq!(group_of(0.95), QuantileGroup::Upper);
        assert_eq!(group_of(0.98), QuantileGroup::Upper);
        assert_eq!(group_of(0.99), QuantileGroup::P99);
    }

    #[test]
    #[should_panic(expected = "not one of the paper's queried quantiles")]
    fn group_of_rejects_unknown_quantile() {
        group_of(0.42);
    }

    #[test]
    fn labels() {
        assert_eq!(QuantileGroup::Mid.label(), "mid");
        assert_eq!(QuantileGroup::Upper.label(), "upper");
        assert_eq!(QuantileGroup::P99.label(), "p99");
    }
}

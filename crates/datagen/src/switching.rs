//! The adaptability workload (§4.5.7): a stream whose distribution switches
//! mid-way.

use crate::ValueStream;

/// Emits `switch_at` values from the first stream, then switches to the
/// second — the §4.5.7 experiment uses 1 M of Binomial(30, 0.4) followed by
/// 1 M of U(30, 100) (Fig. 8a).
pub struct SwitchingStream<A, B> {
    first: A,
    second: B,
    switch_at: u64,
    emitted: u64,
}

impl<A: ValueStream, B: ValueStream> SwitchingStream<A, B> {
    /// Create the switching stream.
    pub fn new(first: A, second: B, switch_at: u64) -> Self {
        Self {
            first,
            second,
            switch_at,
            emitted: 0,
        }
    }

    /// True once the switch point has been passed.
    pub fn has_switched(&self) -> bool {
        self.emitted >= self.switch_at
    }
}

impl<A: ValueStream, B: ValueStream> ValueStream for SwitchingStream<A, B> {
    fn next_value(&mut self) -> f64 {
        let v = if self.emitted < self.switch_at {
            self.first.next_value()
        } else {
            self.second.next_value()
        };
        self.emitted += 1;
        v
    }
}

/// The paper's adaptability workload (§4.5.7): Binomial(30, 0.4) for
/// `half` events, then U(30, 100) for the rest.
pub fn paper_adaptability_stream(
    seed: u64,
    half: u64,
) -> SwitchingStream<crate::BinomialGen, crate::FixedUniform> {
    SwitchingStream::new(
        crate::BinomialGen::new(seed, 30, 0.4),
        crate::FixedUniform::new(seed ^ 0xA5A5_A5A5, 30.0, 100.0),
        half,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinomialGen, FixedUniform};
    use qsketch_core::exact::ExactQuantiles;

    #[test]
    fn switches_at_the_right_point() {
        let mut s = SwitchingStream::new(
            BinomialGen::new(1, 30, 0.4),
            FixedUniform::new(2, 30.0, 100.0),
            100,
        );
        for _ in 0..100 {
            let v = s.next_value();
            // Binomial(30, .4) support: 0..=30.
            assert!((0.0..=30.0).contains(&v));
        }
        assert!(s.has_switched());
        for _ in 0..100 {
            let v = s.next_value();
            assert!((30.0..100.0).contains(&v));
        }
    }

    #[test]
    fn median_sits_at_the_fragment_boundary() {
        // §4.5.7/Fig. 8a: with equal halves, the 0.5 quantile lies at the
        // exact end of the binomial section.
        let mut s = paper_adaptability_stream(3, 50_000);
        let mut oracle = ExactQuantiles::with_capacity(100_000);
        for _ in 0..100_000 {
            oracle.insert(s.next_value());
        }
        let median = oracle.query(0.5).unwrap();
        // The largest binomial values cluster at <= 30, the uniform
        // section starts at 30: the median is the top of the binomial
        // fragment.
        assert!((10.0..=30.0).contains(&median), "median {median}");
        // 0.75 quantile is deep inside the uniform fragment.
        let q75 = oracle.query(0.75).unwrap();
        assert!(q75 > 30.0, "q75 {q75}");
    }
}

//! Synthetic stand-ins for the two real-world data sets (§4.1, Fig. 4c/4d).
//!
//! The originals (2013 NYT taxi fares; UCI household power) cannot be
//! redistributed, so these generators synthesise streams with the exact
//! properties the paper's analysis leans on — see DESIGN.md for the
//! substitution rationale.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Gamma, LogNormal};

use crate::{seeded_rng, ValueStream};

/// Discrete fare spikes: `(fare, probability)`. Together 31.2 % of the
/// stream, matching §4.5.3 ("the top 10 most frequently occurring data
/// points in NYT data set account for approximately 31.2 % of the total"),
/// with the exact 0.25-quantile candidates 6.5/7.5/8.0/9.0 the paper calls
/// out, each above 200 000 occurrences per 14.7 M points (> 1.36 %).
const NYT_SPIKES: [(f64, f64); 10] = [
    (6.5, 0.070),
    (7.5, 0.055),
    (8.0, 0.050),
    (9.0, 0.037),
    (5.5, 0.012),
    (6.0, 0.012),
    (7.0, 0.026),
    (10.0, 0.020),
    (8.5, 0.016),
    (12.0, 0.014),
];

/// Mass of the §4.5.6 spike at 57.3 (the NYT 0.98-quantile value repeated
/// "more than 4,000 times in a sample of 1 million data points").
const NYT_TAIL_SPIKE_VALUE: f64 = 57.3;
const NYT_TAIL_SPIKE_MASS: f64 = 0.005;

/// Parameters of the continuous lognormal fare body: median $10, σ chosen
/// so the overall mixture's 0.98 quantile falls on the 57.3 spike.
const NYT_LN_MU: f64 = std::f64::consts::LN_10; // median fare $10
const NYT_LN_SIGMA: f64 = 0.9;
/// Fares are clipped to the plausible meter range.
const NYT_MIN_FARE: f64 = 2.5;
const NYT_MAX_FARE: f64 = 500.0;

/// NYT taxi-fare stand-in: heavy value repetition at common fares plus a
/// long lognormal tail.
#[derive(Debug, Clone)]
pub struct NytFares {
    rng: StdRng,
    body: LogNormal<f64>,
}

impl NytFares {
    /// Create the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: seeded_rng(seed),
            body: LogNormal::new(NYT_LN_MU, NYT_LN_SIGMA).expect("valid lognormal"),
        }
    }

    /// The ten spike fares (for tests and documentation).
    pub fn spike_fares() -> [f64; 10] {
        let mut out = [0.0; 10];
        for (i, (v, _)) in NYT_SPIKES.iter().enumerate() {
            out[i] = *v;
        }
        out
    }

    /// Total spike probability mass (≈ 0.312 per §4.5.3).
    pub fn spike_mass() -> f64 {
        NYT_SPIKES.iter().map(|(_, p)| p).sum::<f64>()
    }
}

impl ValueStream for NytFares {
    fn next_value(&mut self) -> f64 {
        let u: f64 = self.rng.gen();
        let mut acc = 0.0;
        for &(fare, p) in &NYT_SPIKES {
            acc += p;
            if u < acc {
                return fare;
            }
        }
        acc += NYT_TAIL_SPIKE_MASS;
        if u < acc {
            return NYT_TAIL_SPIKE_VALUE;
        }
        self.body
            .sample(&mut self.rng)
            .clamp(NYT_MIN_FARE, NYT_MAX_FARE)
    }
}

/// Household-power stand-in: bimodal gamma mixture on ≈[0, 11] kW
/// (Fig. 4d) — a low "baseline consumption" hump and a broad "appliances
/// on" hump, with the mid quantiles falling between the humps (§4.5.4).
#[derive(Debug, Clone)]
pub struct PowerBimodal {
    rng: StdRng,
    low: Gamma<f64>,
    high: Gamma<f64>,
}

/// Probability of the low hump.
const POWER_LOW_WEIGHT: f64 = 0.55;
/// Hard ceiling matching the UCI data's ~11 kW maximum.
const POWER_MAX_KW: f64 = 11.0;
/// Measurement floor (the meter never reads 0 exactly).
const POWER_MIN_KW: f64 = 0.08;

impl PowerBimodal {
    /// Create the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: seeded_rng(seed),
            // Low hump: mean 0.4 kW, tight.
            low: Gamma::new(8.0, 0.05).expect("valid gamma"),
            // High hump: mean ~2.1 kW, broader right tail.
            high: Gamma::new(7.0, 0.3).expect("valid gamma"),
        }
    }
}

impl ValueStream for PowerBimodal {
    fn next_value(&mut self) -> f64 {
        let hump = if self.rng.gen::<f64>() < POWER_LOW_WEIGHT {
            &self.low
        } else {
            &self.high
        };
        hump.sample(&mut self.rng).clamp(POWER_MIN_KW, POWER_MAX_KW)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::exact::ExactQuantiles;

    #[test]
    fn nyt_spike_mass_matches_paper() {
        let m = NytFares::spike_mass();
        assert!((m - 0.312).abs() < 1e-9, "spike mass {m}");
    }

    #[test]
    fn nyt_top10_account_for_31_percent() {
        let mut g = NytFares::new(11);
        let n = 500_000;
        let spikes = NytFares::spike_fares();
        let mut hits = 0usize;
        for _ in 0..n {
            if spikes.contains(&g.next_value()) {
                hits += 1;
            }
        }
        let frac = hits as f64 / n as f64;
        assert!((0.30..0.33).contains(&frac), "spike fraction {frac}");
    }

    #[test]
    fn nyt_98th_quantile_is_573() {
        // §4.5.6: the 0.98 quantile value 57.3 repeats > 4000 times per
        // million samples.
        let mut g = NytFares::new(13);
        let n = 1_000_000;
        let mut oracle = ExactQuantiles::with_capacity(n);
        let mut spike_count = 0;
        for _ in 0..n {
            let v = g.next_value();
            if v == NYT_TAIL_SPIKE_VALUE {
                spike_count += 1;
            }
            oracle.insert(v);
        }
        assert!(spike_count > 4_000, "57.3 occurred {spike_count} times");
        assert_eq!(oracle.query(0.98).unwrap(), NYT_TAIL_SPIKE_VALUE);
    }

    #[test]
    fn nyt_quarter_quantile_is_a_spike_fare() {
        // §4.5.3: "the estimates for the 0.25 quantiles were precise,
        // consisting of 6.5, 7.5, 8.0, and 9.0".
        let mut g = NytFares::new(17);
        let mut oracle = ExactQuantiles::with_capacity(200_000);
        for _ in 0..200_000 {
            oracle.insert(g.next_value());
        }
        let q25 = oracle.query(0.25).unwrap();
        assert!(
            [6.5, 7.5, 8.0, 9.0].contains(&q25),
            "0.25-quantile {q25} should be one of the common fares"
        );
    }

    #[test]
    fn nyt_range_is_clipped() {
        let mut g = NytFares::new(19);
        for _ in 0..100_000 {
            let v = g.next_value();
            assert!((NYT_MIN_FARE..=NYT_MAX_FARE).contains(&v));
        }
    }

    #[test]
    fn power_range_matches_uci() {
        let mut g = PowerBimodal::new(23);
        for _ in 0..100_000 {
            let v = g.next_value();
            assert!((POWER_MIN_KW..=POWER_MAX_KW).contains(&v));
        }
    }

    #[test]
    fn power_is_bimodal() {
        // Histogram the stream: the bin density at the two modes must both
        // exceed the density in the trough between them (Fig. 4d shape).
        let mut g = PowerBimodal::new(29);
        let mut bins = [0u32; 60]; // 0..6 kW in 0.1 steps
        for _ in 0..200_000 {
            let v = g.next_value();
            let b = ((v * 10.0) as usize).min(59);
            bins[b] += 1;
        }
        let low_mode = bins[2..6].iter().max().copied().unwrap();
        let trough = bins[8..12].iter().min().copied().unwrap();
        let high_mode = bins[14..26].iter().max().copied().unwrap();
        assert!(low_mode > trough * 2, "low mode {low_mode} vs trough {trough}");
        assert!(high_mode > trough, "high mode {high_mode} vs trough {trough}");
    }

    #[test]
    fn power_mid_quantile_between_humps() {
        // §4.5.4: "the mid quantiles are between the humps".
        let mut g = PowerBimodal::new(31);
        let mut oracle = ExactQuantiles::with_capacity(200_000);
        for _ in 0..200_000 {
            oracle.insert(g.next_value());
        }
        let median = oracle.query(0.5).unwrap();
        assert!((0.5..1.8).contains(&median), "median {median}");
    }
}

//! Synthetic distributions: fixed-parameter streams for the speed
//! experiments and drifting-parameter streams for the accuracy experiments
//! (§4.1).

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Binomial, Distribution, Normal, Pareto, Uniform, Zipf};

use crate::{seeded_rng, ValueStream};

/// Pareto with fixed shape/scale — the insertion/query workload
/// (`α = 1`, `X_m = 1`, §4.1).
#[derive(Debug, Clone)]
pub struct FixedPareto {
    rng: StdRng,
    dist: Pareto<f64>,
}

impl FixedPareto {
    /// Create with scale `x_m` and shape `alpha`.
    pub fn new(seed: u64, x_m: f64, alpha: f64) -> Self {
        Self {
            rng: seeded_rng(seed),
            dist: Pareto::new(x_m, alpha).expect("valid Pareto parameters"),
        }
    }

    /// The paper's speed-workload parameters (§4.1): `α = 1`, `X_m = 1`.
    pub fn paper_speed_workload(seed: u64) -> Self {
        Self::new(seed, 1.0, 1.0)
    }
}

impl ValueStream for FixedPareto {
    fn next_value(&mut self) -> f64 {
        self.dist.sample(&mut self.rng)
    }
}

/// Uniform on `[lo, hi)` with fixed bounds — the merge workload uses
/// `U(30, 100)` (§4.1).
#[derive(Debug, Clone)]
pub struct FixedUniform {
    rng: StdRng,
    dist: Uniform<f64>,
}

impl FixedUniform {
    /// Create with bounds `[lo, hi)`.
    pub fn new(seed: u64, lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "empty uniform range");
        Self {
            rng: seeded_rng(seed),
            dist: Uniform::new(lo, hi),
        }
    }
}

impl ValueStream for FixedUniform {
    fn next_value(&mut self) -> f64 {
        self.dist.sample(&mut self.rng)
    }
}

/// Binomial counts as `f64` — merge workload `B(100, 0.2)`, adaptability
/// first half `B(30, 0.4)` (§4.1).
#[derive(Debug, Clone)]
pub struct BinomialGen {
    rng: StdRng,
    dist: Binomial,
}

impl BinomialGen {
    /// Create with `n` trials of probability `p`.
    pub fn new(seed: u64, n: u64, p: f64) -> Self {
        Self {
            rng: seeded_rng(seed),
            dist: Binomial::new(n, p).expect("valid binomial parameters"),
        }
    }
}

impl ValueStream for BinomialGen {
    fn next_value(&mut self) -> f64 {
        self.dist.sample(&mut self.rng) as f64
    }
}

/// Zipf-distributed ranks as `f64` — merge workload: 20 elements,
/// exponent 0.6 (§4.1).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    rng: StdRng,
    dist: Zipf<f64>,
}

impl ZipfGen {
    /// Create with `num_elements` and `exponent`.
    pub fn new(seed: u64, num_elements: u64, exponent: f64) -> Self {
        Self {
            rng: seeded_rng(seed),
            dist: Zipf::new(num_elements, exponent).expect("valid Zipf parameters"),
        }
    }
}

impl ValueStream for ZipfGen {
    fn next_value(&mut self) -> f64 {
        self.dist.sample(&mut self.rng)
    }
}

/// Pareto whose shape α and scale `X_m` are redrawn from `N(1, 0.05)`
/// every `events_per_update` events — the paper's millisecond-drift
/// emulation of real-world data (§4.1).
#[derive(Debug, Clone)]
pub struct DriftingPareto {
    rng: StdRng,
    param_dist: Normal<f64>,
    current: Pareto<f64>,
    events_per_update: u32,
    until_update: u32,
}

impl DriftingPareto {
    /// Create the drifting stream (`events_per_update` per §4.1 is 50 at
    /// the paper's 50 k events/s rate).
    pub fn new(seed: u64, events_per_update: u32) -> Self {
        assert!(events_per_update >= 1);
        let mut rng = seeded_rng(seed);
        let param_dist = Normal::new(1.0, 0.05).expect("valid normal");
        let current = Self::draw(&mut rng, &param_dist);
        Self {
            rng,
            param_dist,
            current,
            events_per_update,
            until_update: events_per_update,
        }
    }

    fn draw(rng: &mut StdRng, param_dist: &Normal<f64>) -> Pareto<f64> {
        // Clamp away from zero so the occasional far-left normal draw
        // cannot produce an invalid (or absurdly heavy) distribution.
        let alpha = param_dist.sample(rng).max(0.05);
        let x_m = param_dist.sample(rng).max(0.05);
        Pareto::new(x_m, alpha).expect("valid Pareto parameters")
    }
}

impl ValueStream for DriftingPareto {
    fn next_value(&mut self) -> f64 {
        if self.until_update == 0 {
            self.current = Self::draw(&mut self.rng, &self.param_dist);
            self.until_update = self.events_per_update;
        }
        self.until_update -= 1;
        self.current.sample(&mut self.rng)
    }
}

/// Uniform whose minimum is redrawn from `N(1000, 100)` every
/// `events_per_update` events (§4.1); the width is held at 1000.
#[derive(Debug, Clone)]
pub struct DriftingUniform {
    rng: StdRng,
    min_dist: Normal<f64>,
    current_min: f64,
    width: f64,
    events_per_update: u32,
    until_update: u32,
}

impl DriftingUniform {
    /// Create the drifting uniform stream.
    pub fn new(seed: u64, events_per_update: u32) -> Self {
        assert!(events_per_update >= 1);
        let mut rng = seeded_rng(seed);
        let min_dist = Normal::new(1000.0, 100.0).expect("valid normal");
        let current_min = min_dist.sample(&mut rng);
        Self {
            rng,
            min_dist,
            current_min,
            width: 1000.0,
            events_per_update,
            until_update: events_per_update,
        }
    }
}

impl ValueStream for DriftingUniform {
    fn next_value(&mut self) -> f64 {
        if self.until_update == 0 {
            self.current_min = self.min_dist.sample(&mut self.rng);
            self.until_update = self.events_per_update;
        }
        self.until_update -= 1;
        self.current_min + self.rng.gen::<f64>() * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::stats::MomentsAccumulator;

    #[test]
    fn fixed_pareto_respects_scale() {
        let mut g = FixedPareto::paper_speed_workload(1);
        for _ in 0..10_000 {
            assert!(g.next_value() >= 1.0);
        }
    }

    #[test]
    fn fixed_pareto_has_heavy_tail() {
        let mut g = FixedPareto::paper_speed_workload(2);
        let max = (0..100_000).map(|_| g.next_value()).fold(0.0, f64::max);
        // alpha=1 Pareto over 100k draws essentially always exceeds 1000.
        assert!(max > 1_000.0, "max {max}");
    }

    #[test]
    fn fixed_uniform_bounds() {
        let mut g = FixedUniform::new(3, 30.0, 100.0);
        for _ in 0..10_000 {
            let v = g.next_value();
            assert!((30.0..100.0).contains(&v));
        }
    }

    #[test]
    fn binomial_support() {
        let mut g = BinomialGen::new(4, 100, 0.2);
        let mut acc = MomentsAccumulator::new();
        for _ in 0..50_000 {
            let v = g.next_value();
            assert!((0.0..=100.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
            acc.insert(v);
        }
        assert!((acc.mean() - 20.0).abs() < 0.5, "mean {}", acc.mean());
    }

    #[test]
    fn zipf_support_and_skew() {
        let mut g = ZipfGen::new(5, 20, 0.6);
        let mut ones = 0;
        for _ in 0..10_000 {
            let v = g.next_value();
            assert!((1.0..=20.0).contains(&v));
            if v == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 is the most probable element.
        assert!(ones > 1_000, "rank-1 frequency {ones}");
    }

    #[test]
    fn drifting_pareto_parameters_change() {
        let mut g = DriftingPareto::new(6, 10);
        // Collect minima of consecutive blocks: with X_m drifting, block
        // minima vary around 1.0.
        let mut block_minima = Vec::new();
        for _ in 0..50 {
            let m = (0..10).map(|_| g.next_value()).fold(f64::MAX, f64::min);
            block_minima.push(m);
        }
        let distinct = {
            let mut v = block_minima.clone();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup();
            v.len()
        };
        assert!(distinct > 40, "minima should vary: {distinct}");
    }

    #[test]
    fn drifting_uniform_range() {
        let mut g = DriftingUniform::new(7, 50);
        let mut acc = MomentsAccumulator::new();
        for _ in 0..100_000 {
            acc.insert(g.next_value());
        }
        // Centre of mass near 1000 + 500.
        assert!((acc.mean() - 1500.0).abs() < 30.0, "mean {}", acc.mean());
        // Near-uniform: excess kurtosis close to -1.2.
        assert!(acc.excess_kurtosis() < -0.9, "kurtosis {}", acc.excess_kurtosis());
    }
}

//! Workload generators reproducing the paper's data sets (§4.1, Fig. 4).
//!
//! Four primary data sets drive the accuracy experiments:
//!
//! * **Pareto** — extremely long-tailed; shape α and scale `X_m` are
//!   themselves resampled from `N(1, 0.05)` every simulated millisecond so
//!   the stream is not a textbook-perfect distribution (§4.1),
//! * **Uniform** — evenly spread; the window minimum drifts via
//!   `N(1000, 100)`,
//! * **NYT** — stand-in for the 2013 New York taxi-fare data: a discrete
//!   spike mixture (top-10 values ≈ 31 % of all points, as reported in
//!   §4.5.3, including the 0.98-quantile spike at 57.3 from §4.5.6) over a
//!   lognormal fare body,
//! * **Power** — stand-in for the UCI household-power data: a bimodal
//!   gamma mixture on ≈[0, 11] (Fig. 4d).
//!
//! The speed experiments additionally use fixed-parameter Pareto(1, 1),
//! `U(30, 100)`, Binomial(100, 0.2) and Zipf(20, 0.6) streams (§4.1), and
//! the adaptability experiment a Binomial(30, 0.4) → `U(30, 100)` switch
//! (§4.5.7). All generators are deterministic under a seed.
//!
//! The real NYT/Power files are not redistributable; DESIGN.md documents
//! why these synthetic stand-ins preserve the properties the paper's
//! analysis depends on (value repetition, tail weight, bimodality, range).

mod datasets;
mod distributions;
mod switching;

pub use datasets::{NytFares, PowerBimodal};
pub use distributions::{
    BinomialGen, DriftingPareto, DriftingUniform, FixedPareto, FixedUniform, ZipfGen,
};
pub use switching::{paper_adaptability_stream, SwitchingStream};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic stream of `f64` values.
pub trait ValueStream {
    /// Produce the next value.
    fn next_value(&mut self) -> f64;

    /// Materialise the next `n` values into a vector.
    fn take_vec(&mut self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.next_value());
        }
        out
    }
}

impl ValueStream for Box<dyn ValueStream> {
    fn next_value(&mut self) -> f64 {
        (**self).next_value()
    }
}

/// The paper's four accuracy data sets (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSet {
    /// Long-tailed Pareto with drifting parameters.
    Pareto,
    /// Uniform with drifting minimum.
    Uniform,
    /// NYT taxi-fare stand-in.
    Nyt,
    /// Household-power stand-in.
    Power,
}

impl DataSet {
    /// All four data sets in the paper's reporting order.
    pub const ALL: [DataSet; 4] = [DataSet::Pareto, DataSet::Uniform, DataSet::Nyt, DataSet::Power];

    /// Label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            DataSet::Pareto => "Pareto",
            DataSet::Uniform => "Uniform",
            DataSet::Nyt => "NYT",
            DataSet::Power => "Power",
        }
    }

    /// Construct the generator for this data set.
    ///
    /// `events_per_update` controls how many events share one draw of the
    /// drifting distribution parameters — the paper updates them every
    /// millisecond at 50 000 events/s, i.e. every 50 events (§4.1).
    pub fn generator(self, seed: u64, events_per_update: u32) -> Box<dyn ValueStream> {
        match self {
            DataSet::Pareto => Box::new(DriftingPareto::new(seed, events_per_update)),
            DataSet::Uniform => Box::new(DriftingUniform::new(seed, events_per_update)),
            DataSet::Nyt => Box::new(NytFares::new(seed)),
            DataSet::Power => Box::new(PowerBimodal::new(seed)),
        }
    }

    /// Whether §4.2 prescribes the log/arcsinh transform for the Moments
    /// sketch on this data set ("we apply a log transformation to Pareto
    /// and Power data sets").
    pub fn moments_needs_compression(self) -> bool {
        matches!(self, DataSet::Pareto | DataSet::Power)
    }
}

/// Events per drifting-parameter update implied by the paper's setup:
/// 50 000 events/s with updates every millisecond (§4.1, §4.2).
pub const PAPER_EVENTS_PER_UPDATE: u32 = 50;

pub(crate) fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsketch_core::stats::kurtosis;

    #[test]
    fn all_generators_produce_finite_values() {
        for ds in DataSet::ALL {
            let mut g = ds.generator(42, PAPER_EVENTS_PER_UPDATE);
            for _ in 0..10_000 {
                let v = g.next_value();
                assert!(v.is_finite(), "{} produced {v}", ds.label());
            }
        }
    }

    #[test]
    fn generators_deterministic_under_seed() {
        for ds in DataSet::ALL {
            let mut a = ds.generator(7, 50);
            let mut b = ds.generator(7, 50);
            for _ in 0..1000 {
                assert_eq!(a.next_value(), b.next_value(), "{}", ds.label());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DataSet::Pareto.generator(1, 50);
        let mut b = DataSet::Pareto.generator(2, 50);
        let same = (0..100).filter(|_| a.next_value() == b.next_value()).count();
        assert!(same < 5);
    }

    #[test]
    fn kurtosis_ordering_matches_fig7() {
        // Fig. 7 orders data sets by tail weight: Uniform ≈ no tail, Power
        // light, NYT moderate, Pareto extreme.
        let n = 200_000;
        let mut ks = Vec::new();
        for ds in [DataSet::Uniform, DataSet::Power, DataSet::Nyt, DataSet::Pareto] {
            let mut g = ds.generator(123, 50);
            let data = g.take_vec(n);
            ks.push((ds.label(), kurtosis(&data)));
        }
        assert!(ks[0].1 < ks[1].1, "{ks:?}");
        assert!(ks[1].1 < ks[2].1, "{ks:?}");
        assert!(ks[2].1 < ks[3].1, "{ks:?}");
    }

    #[test]
    fn moments_compression_flags() {
        assert!(DataSet::Pareto.moments_needs_compression());
        assert!(DataSet::Power.moments_needs_compression());
        assert!(!DataSet::Uniform.moments_needs_compression());
        assert!(!DataSet::Nyt.moments_needs_compression());
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API surface the workspace's `benches/` use —
//! [`criterion_group!`], [`criterion_main!`], benchmark groups with
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`] and
//! [`BenchmarkId`] — without the statistics engine: each benchmark is
//! warmed up, measured for the configured wall-clock budget, and reported
//! as a mean time per iteration (plus throughput when configured) on
//! stdout. There is no outlier analysis, no HTML report, and no
//! comparison against saved baselines.
//!
//! That is deliberately minimal but honest: the paper's speed experiments
//! (`crates/bench/src/bin/fig5*`) carry their own timing code; the
//! Criterion benches exist for quick relative comparisons, which mean
//! times support.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. This stand-in times each
/// routine call individually, so the variants only bound batch sizes.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine inputs (most common).
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Per-iteration work attributed to a benchmark, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, &mut f);
        group.finish();
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; this stand-in sizes samples by
    /// wall-clock budget, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Report a derived rate with each result.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure one function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            total_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Measure one function against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; results print per bench).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let mean_ns = bencher.mean_ns();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" thrpt: {:.2} Melem/s", n as f64 / mean_ns * 1e3),
            Throughput::Bytes(n) => format!(" thrpt: {:.2} MiB/s", n as f64 / mean_ns * 1e9 / (1 << 20) as f64),
        });
        println!(
            "{full:<56} time: {:>12}{}",
            format_ns(mean_ns),
            rate.unwrap_or_default()
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Runs and times the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    total_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run untimed for the warm-up budget (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measure in growing batches until the budget is spent.
        let mut batch = 1u64;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total_ns += t.elapsed().as_nanos() as f64;
            self.iters += batch;
            batch = (batch * 2).min(1 << 20);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        loop {
            black_box(routine(setup()));
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total_ns += t.elapsed().as_nanos() as f64;
            self.iters += 1;
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iters == 0 {
            0.0
        } else {
            self.total_ns / self.iters as f64
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce a `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            total_ns: 0.0,
            iters: 0,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(b.iters > 0);
        assert!(b.mean_ns() > 0.0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2))
            .throughput(Throughput::Elements(10))
            .bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}

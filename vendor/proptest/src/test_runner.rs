//! Case execution: configuration and the deterministic per-case RNG.

use rand::SeedableRng;

/// The RNG handed to strategies. One fresh instance per test case.
pub type TestRng = rand::rngs::StdRng;

/// Run configuration. Only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives one property test for the configured number of cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

/// FNV-1a — stable across runs and platforms, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

impl TestRunner {
    /// Create a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// Run `case` once per configured case with a deterministic RNG
    /// seeded from `name` and the case index, so failures reproduce.
    pub fn run_cases(&mut self, name: &str, mut case: impl FnMut(&mut TestRng)) {
        let base = fnv1a(name.as_bytes());
        for i in 0..self.config.cases {
            let seed = base ^ (u64::from(i) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng::seed_from_u64(seed);
            case(&mut rng);
        }
    }
}

//! The [`any`] strategy: uniform draws over a type's whole domain.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generate vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

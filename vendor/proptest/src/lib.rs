//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, range and [`collection::vec`] strategies,
//! [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test stub:
//!
//! * **no shrinking** — a failing case panics with its assertion message
//!   but is not minimised;
//! * **deterministic seeding** — case `i` of test `t` always draws the
//!   same inputs (seeded from a hash of the test name and `i`), so
//!   failures reproduce without a persistence file;
//! * strategies are plain value generators (`Strategy::new_value`), not
//!   lazy trees.
//!
//! The surface is API-compatible for the call sites in `tests/` — swap
//! the registry dependency back in and nothing needs to change.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// What the macros re-export, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` against freshly generated
/// arguments for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 1usize..=5, z in -4i32..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=5).contains(&y));
            prop_assert!((-4..4).contains(&z));
        }

        #[test]
        fn float_range(v in 0.5f64..2.0) {
            prop_assert!((0.5..2.0).contains(&v));
        }

        #[test]
        fn vec_strategy_sizes(values in crate::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&values.len()));
            for v in values {
                prop_assert!((0.0..1.0).contains(&v));
            }
        }

        #[test]
        fn any_u8_is_exhaustive_enough(b in any::<u8>()) {
            // Nothing to check beyond type soundness; the value is a u8.
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let collect = |name: &str| {
            let mut out = Vec::new();
            TestRunner::new(ProptestConfig::with_cases(16)).run_cases(name, |rng| {
                out.push((0u64..1_000_000).new_value(rng));
            });
            out
        };
        assert_eq!(collect("same"), collect("same"));
        assert_ne!(collect("same"), collect("different"));
    }
}

//! Value-generation strategies.
//!
//! Unlike real proptest, a strategy here is a plain generator: it
//! produces a value per call and never shrinks.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::RngCore;

/// A source of generated values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                // Modulo bias is immaterial at test-generation scale.
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u128 + 1;
                self.start() + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (<$wide>::from(self.end) - <$wide>::from(self.start)) as u128;
                let off = (u128::from(rng.next_u64()) % span) as $wide;
                (<$wide>::from(self.start) + off) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span =
                    (<$wide>::from(*self.end()) - <$wide>::from(*self.start())) as u128 + 1;
                let off = (u128::from(rng.next_u64()) % span) as $wide;
                (<$wide>::from(*self.start()) + off) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i128);

fn unit_f64(rng: &mut TestRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors a **std-only** implementation of the
//! small slice of the `rand` 0.8 API the code base actually uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256\*\* seeded through SplitMix64, not rand's ChaCha12 — the
//!   workspace only relies on *statistical* quality and determinism under
//!   a fixed seed, not cryptographic strength),
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point used,
//! * [`Rng::gen`] for the primitive types the workspace draws directly.
//!
//! Sequences differ from upstream `rand` (different core generator), which
//! is fine: every consumer in this workspace treats the RNG as an opaque
//! deterministic stream and asserts on distributional properties, never on
//! specific draws.

pub mod rngs;

/// A source of random 64-bit words. Mirrors `rand_core::RngCore` minus the
/// fallible API.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (the high half of [`next_u64`](RngCore::next_u64),
    /// which are the strongest bits of most xorshift-family generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of primitive values from the "standard" distribution:
/// uniform over `[0, 1)` for floats, uniform over the full domain for
/// integers, fair for `bool`.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] exactly as in upstream `rand`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_in_unit_interval_with_correct_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((48_000..52_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate.
//!
//! Implements, std-only and dependency-free (besides the vendored `rand`
//! stand-in), exactly the distributions this workspace samples:
//! [`Uniform`], [`Normal`], [`LogNormal`], [`Exp`], [`Pareto`], [`Gamma`],
//! [`Binomial`] and [`Zipf`], behind the same [`Distribution`] trait and
//! constructor signatures as `rand_distr` 0.4.
//!
//! Algorithms are textbook rather than the heavily optimised upstream
//! ones (Box–Muller instead of the ziggurat, Bernoulli summation /
//! normal approximation for the binomial, CDF inversion for Zipf): the
//! workspace samples at experiment setup time, where a few extra
//! nanoseconds per draw are irrelevant, and every consumer asserts on
//! distributional properties, not exact sequences.

use rand::RngCore;

/// Types that can be sampled given a source of randomness.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// True when `x` is finite and strictly positive (rejects NaN, which a
/// plain `x > 0.0` comparison would let through when negated).
fn finite_positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

/// Uniform `f64` in `[0, 1)`.
fn unit_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `(0, 1)` — safe to take logarithms of.
fn unit_exclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64)
}

/// Uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<F> {
    low: F,
    range: F,
}

impl Uniform<f64> {
    /// Create a uniform distribution on `[low, high)`. Panics if the
    /// range is empty or not finite (matching `rand` 0.8's `Uniform`).
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        assert!((high - low).is_finite(), "Uniform range must be finite");
        Self { low, range: high - low }
    }
}

impl Distribution<f64> for Uniform<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + unit_open01(rng) * self.range
    }
}

/// Normal (Gaussian) distribution, sampled by Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Create with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("std_dev must be finite and non-negative"));
        }
        Ok(Self { mean, std_dev })
    }
}

/// One standard-normal draw (Box–Muller, cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = unit_exclusive(rng);
    let u2 = unit_open01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    norm: Normal<F>,
}

impl LogNormal<f64> {
    /// Create from the mean and standard deviation of the *underlying*
    /// normal (matching `rand_distr`).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`),
/// sampled by CDF inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F> {
    lambda_inv: F,
}

impl Exp<f64> {
    /// Create with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !finite_positive(lambda) {
            return Err(Error("exponential rate must be positive and finite"));
        }
        Ok(Self { lambda_inv: 1.0 / lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_exclusive(rng).ln() * self.lambda_inv
    }
}

/// Pareto distribution with the given scale (minimum value) and shape,
/// sampled by CDF inversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto<F> {
    scale: F,
    inv_neg_shape: F,
}

impl Pareto<f64> {
    /// Create with `scale > 0` and `shape > 0`.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !finite_positive(scale) || !finite_positive(shape) {
            return Err(Error("Pareto scale and shape must be positive"));
        }
        Ok(Self { scale, inv_neg_shape: -1.0 / shape })
    }
}

impl Distribution<f64> for Pareto<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * unit_exclusive(rng).powf(self.inv_neg_shape)
    }
}

/// Gamma distribution with the given shape and scale, sampled by
/// Marsaglia–Tsang (with the standard `shape < 1` boost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma<F> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// Create with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !finite_positive(shape) || !finite_positive(scale) {
            return Err(Error("Gamma shape and scale must be positive"));
        }
        Ok(Self { shape, scale })
    }

    fn sample_shape_ge1<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = unit_exclusive(rng);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let unit = if self.shape >= 1.0 {
            Self::sample_shape_ge1(self.shape, rng)
        } else {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a) for a < 1.
            Self::sample_shape_ge1(self.shape + 1.0, rng)
                * unit_exclusive(rng).powf(1.0 / self.shape)
        };
        unit * self.scale
    }
}

/// How many trials a [`Binomial`] sums individually before switching to
/// the normal approximation.
const BINOMIAL_EXACT_MAX_N: u64 = 4096;

/// Binomial distribution `B(n, p)`, sampled exactly (Bernoulli
/// summation) for small `n` and via the rounded normal approximation for
/// large `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create with `n` trials of probability `p ∈ [0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self, Error> {
        if !(0.0..=1.0).contains(&p) {
            return Err(Error("Binomial p must lie in [0, 1]"));
        }
        Ok(Self { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n <= BINOMIAL_EXACT_MAX_N {
            (0..self.n)
                .filter(|_| unit_open01(rng) < self.p)
                .count() as u64
        } else {
            let mean = self.n as f64 * self.p;
            let sd = (mean * (1.0 - self.p)).sqrt();
            let draw = (mean + sd * standard_normal(rng)).round();
            draw.clamp(0.0, self.n as f64) as u64
        }
    }
}

/// Ranks over which [`Zipf`] inverts the exact CDF rather than the
/// continuous approximation.
const ZIPF_TABLE_MAX_N: u64 = 1 << 20;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`. Sampled by inverse CDF over a precomputed cumulative
/// table for `n ≤ 2^20`; larger supports fall back to inverting the
/// continuous power-law envelope on `[0.5, n + 0.5]` and rounding (a
/// close approximation adequate for workload generation).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf<F> {
    n: u64,
    s: F,
    /// Cumulative unnormalised masses for the table path; empty for the
    /// continuous fallback.
    cdf: Vec<F>,
}

impl Zipf<f64> {
    /// Create over `n ≥ 1` elements with exponent `s ≥ 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error("Zipf needs at least one element"));
        }
        if s < 0.0 || !s.is_finite() {
            return Err(Error("Zipf exponent must be non-negative and finite"));
        }
        let cdf = if n <= ZIPF_TABLE_MAX_N {
            let mut acc = 0.0;
            (1..=n)
                .map(|k| {
                    acc += (k as f64).powf(-s);
                    acc
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self { n, s, cdf })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if !self.cdf.is_empty() {
            let target = unit_open01(rng) * self.cdf[self.cdf.len() - 1];
            let idx = self.cdf.partition_point(|&c| c <= target);
            (idx.min(self.cdf.len() - 1) + 1) as f64
        } else {
            // Continuous envelope x^-s on [0.5, n+0.5], inverted and
            // rounded to the nearest rank.
            let (a, b) = (0.5f64, self.n as f64 + 0.5);
            let u = unit_exclusive(rng);
            let x = if (self.s - 1.0).abs() < 1e-12 {
                a * (b / a).powf(u)
            } else {
                let e = 1.0 - self.s;
                (a.powf(e) + u * (b.powf(e) - a.powf(e))).powf(1.0 / e)
            };
            x.round().clamp(1.0, self.n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: &impl Distribution<f64>, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(30.0, 100.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((30.0..100.0).contains(&v));
        }
        assert!((mean_of(&d, 100_000, 2) - 65.0).abs() < 0.5);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(1000.0, 100.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
        assert!((var.sqrt() - 100.0).abs() < 2.0, "sd {}", var.sqrt());
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(1.0 / 150_000.0).unwrap();
        let m = mean_of(&d, 200_000, 4);
        assert!((m - 150_000.0).abs() < 2_000.0, "mean {m}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let v = d.sample(&mut rng);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        assert!(max > 1_000.0, "alpha=1 tail should exceed 1000, max {max}");
    }

    #[test]
    fn pareto_median_matches_closed_form() {
        // Median of Pareto(x_m, alpha) is x_m * 2^(1/alpha).
        let d = Pareto::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[50_000];
        let expect = 2.0 * 2f64.powf(1.0 / 3.0);
        assert!((median - expect).abs() / expect < 0.02, "median {median}");
    }

    #[test]
    fn gamma_mean_large_and_small_shape() {
        let d = Gamma::new(8.0, 0.05).unwrap();
        assert!((mean_of(&d, 200_000, 7) - 0.4).abs() < 0.01);
        let small = Gamma::new(0.5, 2.0).unwrap();
        let m = mean_of(&small, 200_000, 8);
        assert!((m - 1.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn binomial_exact_and_approximate() {
        let d = Binomial::new(100, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!(v <= 100);
            sum += v;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 20.0).abs() < 0.3, "mean {mean}");

        let big = Binomial::new(1_000_000, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let v = big.sample(&mut rng) as f64;
        assert!((v - 500_000.0).abs() < 5_000.0, "draw {v}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let d = Zipf::new(20, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ones = 0;
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=20.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
            if v == 1.0 {
                ones += 1;
            }
        }
        assert!(ones > 1_000, "rank-1 frequency {ones}");
    }

    #[test]
    fn zipf_continuous_fallback_in_support() {
        let d = Zipf::new(u64::from(u32::MAX), 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!(v >= 1.0 && v <= u32::MAX as f64);
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Zipf::new(0, 0.6).is_err());
    }
}
